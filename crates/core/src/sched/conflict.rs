//! Schedule conflict prover: machine-checked conflict-freedom certificates.
//!
//! The paper's §5 scheduling argument rests on a no-overlap invariant:
//! wavefront-update and LIBMF's global table never let two concurrent
//! workers touch the same P row or Q column, while batch-Hogwild!
//! deliberately tolerates (rare) overlaps. Until now that claim lived in
//! doc comments; this module *proves* it per run.
//!
//! [`certify`] symbolically drives any [`UpdateStream`] — the same
//! deterministic schedule the engine will execute — against a dataset's
//! row/column access sets, round by round. Two non-stalled workers landing
//! on the same P row or Q column in one round is exactly the collision the
//! stale-additive engine would double-apply, so the prover either
//!
//! * returns a [`ConflictCert`]: a certificate that *no* round of *any*
//!   checked epoch overlaps, carrying a digest of the schedule it
//!   inspected, or
//! * returns a [`ConflictWitness`]: the first concrete counterexample
//!   (epoch, round, worker pair, shared row/column, sample indices).
//!
//! [`crate::solver::train_resumable`] consumes certificates through
//! [`resolve_exec_mode`] — [`ExecMode::Sequential`]
//! is only selected for schedules that certified; a schedule that claims
//! conflict-freedom but produces a witness is downgraded to the
//! stale-additive conflict engine instead of being silently serialised.

use cumf_data::CooMatrix;

use crate::concurrent::ExecMode;

use super::{StreamItem, UpdateStream};

/// Which factor-matrix axis two workers collided on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Both workers updated this P row (shared user `u`).
    Row(u32),
    /// Both workers updated this Q column (shared item `v`).
    Col(u32),
}

impl std::fmt::Display for Axis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Axis::Row(u) => write!(f, "P-row {u}"),
            Axis::Col(v) => write!(f, "Q-col {v}"),
        }
    }
}

/// A concrete schedule conflict: round `round` of epoch `epoch` handed
/// `sample_a` to `worker_a` and `sample_b` to `worker_b`, and both samples
/// touch `axis`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConflictWitness {
    /// Epoch of the conflicting round.
    pub epoch: u32,
    /// Round index within the epoch (0-based).
    pub round: u64,
    /// First worker of the colliding pair.
    pub worker_a: usize,
    /// Second worker of the colliding pair.
    pub worker_b: usize,
    /// Sample index `worker_a` was scheduled.
    pub sample_a: usize,
    /// Sample index `worker_b` was scheduled.
    pub sample_b: usize,
    /// The shared P row or Q column.
    pub axis: Axis,
}

impl std::fmt::Display for ConflictWitness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "epoch {} round {}: workers {} and {} (samples {} and {}) share {}",
            self.epoch,
            self.round,
            self.worker_a,
            self.worker_b,
            self.sample_a,
            self.sample_b,
            self.axis
        )
    }
}

/// A conflict-freedom certificate: every checked round of every checked
/// epoch of the named schedule is overlap-free on both axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConflictCert {
    /// Schedule (policy) name the certificate covers.
    pub schedule: &'static str,
    /// Parallel workers the schedule drives.
    pub workers: usize,
    /// Epochs the prover drove.
    pub epochs_checked: u32,
    /// Scheduling rounds inspected across all checked epochs.
    pub rounds: u64,
    /// Samples inspected across all checked epochs.
    pub samples: u64,
    /// FNV-1a digest of the inspected schedule — `(epoch, round, worker,
    /// sample)` quadruples in order. Re-certifying the same deterministic
    /// stream must reproduce this digest bit-exactly.
    pub schedule_digest: u64,
}

impl ConflictCert {
    /// The trivial certificate for single-worker schedules: one worker per
    /// round can never pair-conflict, no driving needed.
    pub fn trivial(schedule: &'static str) -> Self {
        ConflictCert {
            schedule,
            workers: 1,
            epochs_checked: 0,
            rounds: 0,
            samples: 0,
            schedule_digest: FNV_OFFSET,
        }
    }
}

impl std::fmt::Display for ConflictCert {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.epochs_checked == 0 {
            write!(f, "{}: trivially conflict-free (1 worker)", self.schedule)
        } else {
            write!(
                f,
                "{}: conflict-free over {} epochs, {} rounds, {} samples, {} workers \
                 (digest {:016x})",
                self.schedule,
                self.epochs_checked,
                self.rounds,
                self.samples,
                self.workers,
                self.schedule_digest
            )
        }
    }
}

/// Outcome of driving a schedule through the prover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// No round of any checked epoch overlaps.
    Certified(ConflictCert),
    /// The schedule conflicts; here is the first counterexample.
    Refuted(ConflictWitness),
}

impl Verdict {
    /// True for [`Verdict::Certified`].
    pub fn is_certified(&self) -> bool {
        matches!(self, Verdict::Certified(_))
    }

    /// The certificate, if the schedule certified.
    pub fn certificate(&self) -> Option<&ConflictCert> {
        match self {
            Verdict::Certified(c) => Some(c),
            Verdict::Refuted(_) => None,
        }
    }

    /// The counterexample, if the schedule was refuted.
    pub fn witness(&self) -> Option<&ConflictWitness> {
        match self {
            Verdict::Certified(_) => None,
            Verdict::Refuted(w) => Some(w),
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv1a(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Drives `stream` for `epochs` epochs against `data`'s row/column access
/// sets and proves conflict-freedom or produces a witness.
///
/// The stream is consumed epoch by epoch exactly as the execution engine
/// would consume it ([`UpdateStream::begin_epoch`] then one
/// [`UpdateStream::next`] per live worker per round), so the certificate
/// covers precisely the schedule a training run over the same seed would
/// execute. The stream is left positioned at the end of epoch
/// `epochs - 1`; call `begin_epoch` to reuse it (all streams are
/// deterministic, so replay is exact).
///
/// `max_rounds_per_epoch` guards against non-terminating schedules; the
/// prover panics if an epoch fails to exhaust within the bound (a
/// scheduling deadlock — itself a bug the bound surfaces).
///
/// # Panics
///
/// Panics if the stream schedules a sample index out of `data`'s bounds,
/// or if an epoch exceeds `max_rounds_per_epoch` rounds.
pub fn certify<S: UpdateStream + ?Sized>(
    data: &CooMatrix,
    stream: &mut S,
    epochs: u32,
    max_rounds_per_epoch: u64,
) -> Verdict {
    let s = stream.workers();
    let name = stream.name();
    if s <= 1 {
        // Still drive the schedule (digest + termination check is useful),
        // but a single worker cannot pair-conflict. Cheap exit instead:
        return Verdict::Certified(ConflictCert::trivial(name));
    }
    let nnz = data.nnz();
    let mut cert = ConflictCert {
        schedule: name,
        workers: s,
        epochs_checked: epochs,
        rounds: 0,
        samples: 0,
        schedule_digest: FNV_OFFSET,
    };
    // Per-round claim maps: axis value -> (worker, sample). Rebuilt per
    // round; sized by the worker count, so plain Vecs beat hashing.
    let mut row_claims: Vec<(u32, usize, usize)> = Vec::with_capacity(s);
    let mut col_claims: Vec<(u32, usize, usize)> = Vec::with_capacity(s);
    for epoch in 0..epochs {
        stream.begin_epoch(epoch);
        let mut exhausted = vec![false; s];
        let mut live = s;
        let mut round: u64 = 0;
        while live > 0 {
            assert!(
                round < max_rounds_per_epoch,
                "schedule `{name}` did not exhaust within {max_rounds_per_epoch} rounds \
                 (scheduling deadlock?)"
            );
            row_claims.clear();
            col_claims.clear();
            for (w, done) in exhausted.iter_mut().enumerate() {
                if *done {
                    continue;
                }
                match stream.next(w) {
                    StreamItem::Sample(i) => {
                        assert!(
                            i < nnz,
                            "schedule `{name}` produced sample {i} out of bounds ({nnz})"
                        );
                        let e = data.get(i);
                        if let Some(&(_, wa, ia)) = row_claims.iter().find(|&&(u, _, _)| u == e.u) {
                            return Verdict::Refuted(ConflictWitness {
                                epoch,
                                round,
                                worker_a: wa,
                                worker_b: w,
                                sample_a: ia,
                                sample_b: i,
                                axis: Axis::Row(e.u),
                            });
                        }
                        if let Some(&(_, wa, ia)) = col_claims.iter().find(|&&(v, _, _)| v == e.v) {
                            return Verdict::Refuted(ConflictWitness {
                                epoch,
                                round,
                                worker_a: wa,
                                worker_b: w,
                                sample_a: ia,
                                sample_b: i,
                                axis: Axis::Col(e.v),
                            });
                        }
                        row_claims.push((e.u, w, i));
                        col_claims.push((e.v, w, i));
                        cert.samples += 1;
                        let mut h = cert.schedule_digest;
                        h = fnv1a(h, u64::from(epoch));
                        h = fnv1a(h, round);
                        h = fnv1a(h, w as u64);
                        h = fnv1a(h, i as u64);
                        cert.schedule_digest = h;
                    }
                    StreamItem::Stall => {}
                    StreamItem::Exhausted => {
                        *done = true;
                        live -= 1;
                    }
                }
            }
            round += 1;
            cert.rounds += 1;
        }
    }
    Verdict::Certified(cert)
}

/// Resolves the execution mode for a schedule that *claims*
/// `default_mode`: [`ExecMode::Sequential`] is only honoured when the
/// prover certifies the schedule conflict-free over the epochs about to
/// run; a refuted schedule is downgraded to [`ExecMode::StaleAdditive`]
/// (the engine that models its races honestly) and the witness returned.
///
/// Non-sequential defaults pass through untouched (racy engines need no
/// certificate). The probe stream is consumed; pass a dedicated instance.
pub fn resolve_exec_mode<S: UpdateStream + ?Sized>(
    data: &CooMatrix,
    probe: &mut S,
    default_mode: ExecMode,
    epochs: u32,
) -> (ExecMode, Option<Verdict>) {
    if default_mode != ExecMode::Sequential {
        return (default_mode, None);
    }
    // Rounds are bounded by samples plus per-worker bookkeeping; any
    // correct schedule exhausts well within this.
    let bound = (data.nnz() as u64 + 2) * (probe.workers() as u64 + 1) + 64;
    let verdict = certify(data, probe, epochs, bound);
    let mode = match &verdict {
        Verdict::Certified(_) => {
            cumf_obs::counter(
                "cumf_core_sched_certified_total",
                "Schedules proven conflict-free before sequential execution",
            )
            .inc();
            ExecMode::Sequential
        }
        Verdict::Refuted(w) => {
            cumf_obs::counter(
                "cumf_core_sched_refuted_total",
                "Sequential-claiming schedules refuted by a conflict witness",
            )
            .inc();
            eprintln!(
                "warning: schedule `{}` claims conflict-freedom but conflicts ({w}); \
                 downgrading to the stale-additive conflict engine",
                probe.name()
            );
            ExecMode::StaleAdditive
        }
    };
    (mode, Some(verdict))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{
        BatchHogwildStream, LibmfTableStream, SerialStream, UpdateStream, WavefrontStream,
    };

    fn matrix(m: u32, n: u32, nnz: usize) -> CooMatrix {
        let mut coo = CooMatrix::new(m, n);
        for i in 0..nnz {
            coo.push(
                (i as u32).wrapping_mul(7919) % m,
                (i as u32).wrapping_mul(104_729) % n,
                1.0,
            );
        }
        coo
    }

    #[test]
    fn serial_is_trivially_certified() {
        let data = matrix(8, 8, 50);
        let mut s = SerialStream::new(data.nnz());
        let v = certify(&data, &mut s, 3, 10_000);
        let cert = v.certificate().expect("serial must certify");
        assert_eq!(cert.workers, 1);
        assert_eq!(cert.epochs_checked, 0); // trivial path
    }

    #[test]
    fn wavefront_certifies_and_digest_is_replayable() {
        let data = matrix(64, 64, 1500);
        let mut a = WavefrontStream::new(&data, 4, 8, 9);
        let mut b = WavefrontStream::new(&data, 4, 8, 9);
        let va = certify(&data, &mut a, 4, 1_000_000);
        let vb = certify(&data, &mut b, 4, 1_000_000);
        let ca = va.certificate().expect("wavefront must certify");
        let cb = vb.certificate().expect("wavefront must certify");
        assert_eq!(ca, cb, "deterministic schedule, deterministic cert");
        assert_eq!(ca.samples, 4 * 1500);
        assert!(ca.schedule_digest != 0);
    }

    #[test]
    fn libmf_certifies() {
        let data = matrix(60, 60, 900);
        let mut s = LibmfTableStream::new(&data, 5, 6, 3);
        let v = certify(&data, &mut s, 3, 1_000_000);
        assert!(v.is_certified(), "{v:?}");
    }

    #[test]
    fn batch_hogwild_on_1x1_is_refuted_with_witness() {
        let mut coo = CooMatrix::new(1, 1);
        for _ in 0..8 {
            coo.push(0, 0, 1.0);
        }
        let mut s = BatchHogwildStream::new(coo.nnz(), 2, 1);
        let v = certify(&coo, &mut s, 1, 10_000);
        let w = v.witness().expect("1x1 Hogwild! must conflict");
        assert_eq!(w.epoch, 0);
        assert_eq!(w.round, 0);
        assert_eq!((w.worker_a, w.worker_b), (0, 1));
        assert_eq!(w.axis, Axis::Row(0), "row axis is checked first");
        assert_ne!(w.sample_a, w.sample_b);
    }

    #[test]
    fn certificate_consumption_downgrades_refuted_schedules() {
        let mut coo = CooMatrix::new(1, 1);
        for _ in 0..8 {
            coo.push(0, 0, 1.0);
        }
        let mut racy = BatchHogwildStream::new(coo.nnz(), 2, 1);
        let (mode, verdict) = resolve_exec_mode(&coo, &mut racy, ExecMode::Sequential, 1);
        assert_eq!(mode, ExecMode::StaleAdditive);
        assert!(verdict.unwrap().witness().is_some());

        let data = matrix(64, 64, 500);
        let mut clean = WavefrontStream::new(&data, 4, 8, 1);
        let (mode, verdict) = resolve_exec_mode(&data, &mut clean, ExecMode::Sequential, 2);
        assert_eq!(mode, ExecMode::Sequential);
        assert!(verdict.unwrap().is_certified());
    }

    #[test]
    fn non_sequential_defaults_pass_through() {
        let data = matrix(8, 8, 20);
        let mut s = BatchHogwildStream::new(data.nnz(), 4, 2);
        let (mode, verdict) = resolve_exec_mode(&data, &mut s, ExecMode::StaleAdditive, 5);
        assert_eq!(mode, ExecMode::StaleAdditive);
        assert!(verdict.is_none());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_sample_is_rejected() {
        struct Bogus;
        impl UpdateStream for Bogus {
            fn workers(&self) -> usize {
                2
            }
            fn next(&mut self, _w: usize) -> StreamItem {
                StreamItem::Sample(999)
            }
            fn begin_epoch(&mut self, _e: u32) {}
            fn name(&self) -> &'static str {
                "bogus"
            }
        }
        let data = matrix(4, 4, 10);
        let _ = certify(&data, &mut Bogus, 1, 100);
    }
}
