//! Plain Hogwild! (Recht et al., 2011): every worker independently picks a
//! uniformly random sample each step, with no coordination whatsoever.
//!
//! This is the convergence-theoretic ancestor of batch-Hogwild! (§5.1);
//! the paper notes its weakness is *data locality*, not convergence — each
//! random single-sample fetch drags a whole cache line.

use cumf_rng::ChaCha8Rng;
use cumf_rng::Rng;
use cumf_rng::SeedableRng;

use super::{StreamItem, UpdateStream};

/// Uniform lock-free Hogwild! scheduling.
#[derive(Debug, Clone)]
pub struct HogwildStream {
    n: usize,
    workers: usize,
    issued: usize,
    quota: usize,
    rng: ChaCha8Rng,
    seed: u64,
}

impl HogwildStream {
    /// `workers` workers drawing from `n` samples; an epoch issues exactly
    /// `n` updates in total (a full pass in expectation).
    pub fn new(n: usize, workers: usize, seed: u64) -> Self {
        assert!(workers > 0);
        HogwildStream {
            n,
            workers,
            issued: 0,
            quota: n,
            rng: ChaCha8Rng::seed_from_u64(seed),
            seed,
        }
    }
}

impl UpdateStream for HogwildStream {
    fn workers(&self) -> usize {
        self.workers
    }

    fn next(&mut self, _worker: usize) -> StreamItem {
        if self.n == 0 || self.issued >= self.quota {
            return StreamItem::Exhausted;
        }
        self.issued += 1;
        StreamItem::Sample(self.rng.gen_range(0..self.n))
    }

    fn begin_epoch(&mut self, epoch: u32) {
        self.issued = 0;
        // Fresh, deterministic stream per epoch.
        self.rng = ChaCha8Rng::seed_from_u64(self.seed ^ (u64::from(epoch) << 32));
    }

    fn name(&self) -> &'static str {
        "hogwild"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::drain_epoch;

    #[test]
    fn issues_exactly_n_updates() {
        let mut s = HogwildStream::new(1000, 8, 1);
        let seqs = drain_epoch(&mut s, 10_000);
        let total: usize = seqs.iter().map(|v| v.len()).sum();
        assert_eq!(total, 1000);
        assert!(seqs.iter().all(|v| v.iter().all(|&i| i < 1000)));
    }

    #[test]
    fn coverage_is_roughly_uniform() {
        let mut s = HogwildStream::new(100, 4, 2);
        let mut counts = vec![0u32; 100];
        // Draw many epochs with distinct seeds for a frequency check.
        let mut total = 0;
        for e in 0..200 {
            s.begin_epoch(e);
            for seq in drain_epoch(&mut s, 10_000) {
                for i in seq {
                    counts[i] += 1;
                    total += 1;
                }
            }
        }
        let mean = total as f64 / 100.0;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > mean * 0.7 && (c as f64) < mean * 1.3,
                "sample {i} drawn {c} times vs mean {mean}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed_and_epoch() {
        let mut a = HogwildStream::new(50, 2, 9);
        let mut b = HogwildStream::new(50, 2, 9);
        a.begin_epoch(3);
        b.begin_epoch(3);
        assert_eq!(drain_epoch(&mut a, 1000), drain_epoch(&mut b, 1000));
    }

    #[test]
    fn empty_data_exhausts() {
        let mut s = HogwildStream::new(0, 4, 0);
        assert_eq!(s.next(0), StreamItem::Exhausted);
    }
}
