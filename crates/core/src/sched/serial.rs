//! The textbook serial SGD order: one worker, samples in storage order
//! (the matrix is pre-shuffled per Algorithm 1 line 2, so storage order is
//! a uniform random permutation).

use super::{StreamItem, UpdateStream};

/// Serial SGD: the correctness and convergence reference.
#[derive(Debug, Clone)]
pub struct SerialStream {
    n: usize,
    cursor: usize,
}

impl SerialStream {
    /// Creates a serial stream over `n` samples.
    pub fn new(n: usize) -> Self {
        SerialStream { n, cursor: 0 }
    }
}

impl UpdateStream for SerialStream {
    fn workers(&self) -> usize {
        1
    }

    fn next(&mut self, worker: usize) -> StreamItem {
        debug_assert_eq!(worker, 0);
        if self.cursor >= self.n {
            StreamItem::Exhausted
        } else {
            let i = self.cursor;
            self.cursor += 1;
            StreamItem::Sample(i)
        }
    }

    fn begin_epoch(&mut self, _epoch: u32) {
        self.cursor = 0;
    }

    fn name(&self) -> &'static str {
        "serial"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::drain_epoch;

    #[test]
    fn visits_every_sample_once_in_order() {
        let mut s = SerialStream::new(5);
        let seq = drain_epoch(&mut s, 100);
        assert_eq!(seq, vec![vec![0, 1, 2, 3, 4]]);
    }

    #[test]
    fn epoch_reset() {
        let mut s = SerialStream::new(3);
        let _ = drain_epoch(&mut s, 100);
        s.begin_epoch(1);
        let seq = drain_epoch(&mut s, 100);
        assert_eq!(seq[0], vec![0, 1, 2]);
    }

    #[test]
    fn empty_stream_exhausts_immediately() {
        let mut s = SerialStream::new(0);
        assert_eq!(s.next(0), StreamItem::Exhausted);
    }
}
