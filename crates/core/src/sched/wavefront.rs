//! Wavefront-update (§5.2) — the paper's blocking-based GPU policy.
//!
//! The rating matrix is split into an `s × c` grid (`s` = workers). Worker
//! `w` owns grid row `w` and walks its blocks in a per-epoch column
//! sequence; before entering a block it must hold that block's *column
//! lock* — a one-dimensional, local check, in contrast with LIBMF's global
//! two-dimensional table. A worker that finishes a block early moves on as
//! soon as its next column frees up, which bounds load imbalance.
//!
//! ## Deadlock freedom
//!
//! Column sequences are rotations of one shared per-epoch permutation
//! (worker `w` starts at offset `w · c / s`). All workers then traverse the
//! same cyclic order; a waits-for edge from worker A to worker B means B
//! holds the column one step ahead of A's position, so any waits-for cycle
//! of length L would need `L ≡ 0 (mod c)` — impossible for `L ≤ s < c`.
//! The constructor therefore requires `c ≥ 2s` (the paper's own example
//! uses c = 2s: 4 workers, 8 columns).

use cumf_rng::seq::SliceRandom;
use cumf_rng::ChaCha8Rng;
use cumf_rng::SeedableRng;

use cumf_data::CooMatrix;

use super::{StreamItem, UpdateStream};

/// Wavefront-update scheduling over an s×c block grid.
#[derive(Debug, Clone)]
pub struct WavefrontStream {
    workers: usize,
    cols: usize,
    /// blocks[w * cols + c] = sample indices of block (w, c).
    blocks: Vec<Vec<usize>>,
    /// Shared per-epoch column permutation.
    perm: Vec<usize>,
    /// Per-worker rotation offset into `perm`.
    offsets: Vec<usize>,
    /// locks[col] = worker currently holding the column.
    locks: Vec<Option<usize>>,
    /// Per-worker progress: (wave index, cursor, holding column).
    state: Vec<WorkerState>,
    seed: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct WorkerState {
    wave: usize,
    cursor: usize,
    holding: Option<usize>,
}

impl WavefrontStream {
    /// Builds the grid over `data` with `workers` block-rows and `cols`
    /// block-columns. Requires `cols ≥ 2 · workers` (see module docs) and
    /// `workers ≤ m`, `cols ≤ n`.
    pub fn new(data: &CooMatrix, workers: usize, cols: usize, seed: u64) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(
            cols >= 2 * workers,
            "wavefront needs cols >= 2*workers for deadlock freedom \
             (got {cols} cols, {workers} workers)"
        );
        assert!(
            workers as u32 <= data.rows().max(1),
            "more workers than rows"
        );
        assert!(cols as u32 <= data.cols().max(1), "more columns than items");
        let m = data.rows() as usize;
        let n = data.cols() as usize;
        let mut blocks = vec![Vec::new(); workers * cols];
        for (i, e) in data.iter().enumerate() {
            let bw = (e.u as usize * workers / m).min(workers - 1);
            let bc = (e.v as usize * cols / n).min(cols - 1);
            blocks[bw * cols + bc].push(i);
        }
        let mut stream = WavefrontStream {
            workers,
            cols,
            blocks,
            perm: (0..cols).collect(),
            offsets: (0..workers).map(|w| w * cols / workers).collect(),
            locks: vec![None; cols],
            state: vec![WorkerState::default(); workers],
            seed,
        };
        stream.begin_epoch(0);
        stream
    }

    /// The column worker `w` targets at its current wave.
    fn target_col(&self, w: usize) -> usize {
        self.perm[(self.offsets[w] + self.state[w].wave) % self.cols]
    }

    /// Total blocks in the grid.
    pub fn grid_blocks(&self) -> usize {
        self.workers * self.cols
    }
}

impl UpdateStream for WavefrontStream {
    fn workers(&self) -> usize {
        self.workers
    }

    fn next(&mut self, w: usize) -> StreamItem {
        loop {
            let st = self.state[w];
            match st.holding {
                Some(col) => {
                    let block = &self.blocks[w * self.cols + col];
                    if st.cursor < block.len() {
                        let i = block[st.cursor];
                        self.state[w].cursor += 1;
                        return StreamItem::Sample(i);
                    }
                    // Block finished: release the column, move to the
                    // next wave.
                    debug_assert_eq!(self.locks[col], Some(w));
                    self.locks[col] = None;
                    self.state[w].holding = None;
                    self.state[w].wave += 1;
                    self.state[w].cursor = 0;
                }
                None => {
                    if st.wave >= self.cols {
                        return StreamItem::Exhausted;
                    }
                    let col = self.target_col(w);
                    match self.locks[col] {
                        None => {
                            self.locks[col] = Some(w);
                            self.state[w].holding = Some(col);
                            // Loop: serve the first sample (or release an
                            // empty block immediately).
                        }
                        Some(_) => return StreamItem::Stall,
                    }
                }
            }
        }
    }

    fn begin_epoch(&mut self, epoch: u32) {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ (u64::from(epoch) << 32));
        self.perm = (0..self.cols).collect();
        self.perm.shuffle(&mut rng);
        self.locks.fill(None);
        self.state.fill(WorkerState::default());
    }

    fn name(&self) -> &'static str {
        "wavefront"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::drain_epoch;

    fn matrix(m: u32, n: u32, nnz: usize) -> CooMatrix {
        let mut coo = CooMatrix::new(m, n);
        for i in 0..nnz {
            coo.push(
                (i as u32 * 7919) % m,
                (i as u32 * 104729) % n,
                (i % 5) as f32,
            );
        }
        coo
    }

    #[test]
    fn covers_every_sample_exactly_once() {
        let data = matrix(64, 64, 2000);
        let mut s = WavefrontStream::new(&data, 4, 8, 1);
        let seqs = drain_epoch(&mut s, 100_000);
        let mut all: Vec<usize> = seqs.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..2000).collect::<Vec<_>>());
    }

    #[test]
    fn workers_stay_in_their_block_rows() {
        let data = matrix(64, 64, 2000);
        let mut s = WavefrontStream::new(&data, 4, 8, 2);
        let seqs = drain_epoch(&mut s, 100_000);
        for (w, seq) in seqs.iter().enumerate() {
            for &i in seq {
                let u = data.get(i).u as usize;
                let bw = (u * 4 / 64).min(3);
                assert_eq!(bw, w, "sample {i} (row {u}) served by worker {w}");
            }
        }
    }

    /// The central §5.2 invariant: at no instant do two workers update
    /// blocks in the same column.
    #[test]
    fn no_two_workers_share_a_column() {
        let data = matrix(128, 128, 5000);
        let mut s = WavefrontStream::new(&data, 8, 16, 3);
        let n = data.cols() as usize;
        let mut done = [false; 8];
        let mut guard = 0;
        while !done.iter().all(|&d| d) {
            let mut cols_this_round = std::collections::HashSet::new();
            for (w, d) in done.iter_mut().enumerate() {
                if *d {
                    continue;
                }
                match s.next(w) {
                    StreamItem::Sample(i) => {
                        let v = data.get(i).v as usize;
                        let bc = (v * 16 / n).min(15);
                        assert!(
                            cols_this_round.insert(bc),
                            "two workers updated block-column {bc} in one round"
                        );
                    }
                    StreamItem::Stall => {}
                    StreamItem::Exhausted => *d = true,
                }
            }
            guard += 1;
            assert!(guard < 100_000, "deadlock");
        }
    }

    #[test]
    fn epochs_reshuffle_but_still_cover() {
        let data = matrix(32, 32, 500);
        let mut s = WavefrontStream::new(&data, 2, 4, 4);
        let a: Vec<Vec<usize>> = drain_epoch(&mut s, 100_000);
        s.begin_epoch(1);
        let b: Vec<Vec<usize>> = drain_epoch(&mut s, 100_000);
        let flat = |v: &Vec<Vec<usize>>| {
            let mut f: Vec<usize> = v.iter().flatten().copied().collect();
            f.sort_unstable();
            f
        };
        assert_eq!(flat(&a), flat(&b), "same coverage");
        assert_ne!(a, b, "different order across epochs");
    }

    #[test]
    fn rotated_offsets_spread_workers() {
        let data = matrix(64, 64, 100);
        let s = WavefrontStream::new(&data, 4, 8, 0);
        assert_eq!(s.offsets, vec![0, 2, 4, 6]);
        assert_eq!(s.grid_blocks(), 32);
    }

    #[test]
    #[should_panic(expected = "deadlock freedom")]
    fn too_few_columns_rejected() {
        let data = matrix(16, 16, 10);
        let _ = WavefrontStream::new(&data, 4, 4, 0);
    }

    #[test]
    fn single_worker_degenerates_to_blocked_serial() {
        let data = matrix(16, 16, 200);
        let mut s = WavefrontStream::new(&data, 1, 2, 5);
        let seqs = drain_epoch(&mut s, 10_000);
        assert_eq!(seqs[0].len(), 200);
    }
}
