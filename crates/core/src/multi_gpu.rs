//! Multi-GPU / out-of-core training (§6).
//!
//! For data sets that exceed one device's memory, the solver partitions R
//! into an `i × j` [`Grid`], schedules waves of mutually-independent blocks
//! across `g` (simulated) GPUs, executes each block's SGD updates with the
//! single-GPU engine, and accounts time through the transfer/compute
//! pipeline model of `cumf-gpu-sim` (H2D of the block + its P/Q segments,
//! compute, D2H of the segments, with §6.2's copy/compute overlap).
//!
//! Because concurrently-scheduled blocks are independent (Eq. 6), their
//! updates touch disjoint P/Q rows: executing them back-to-back in program
//! order is *numerically identical* to executing them in parallel, so
//! convergence results are exact while timing comes from the machine model.

use cumf_rng::ChaCha8Rng;
use cumf_rng::SeedableRng;

use cumf_data::CooMatrix;
use cumf_gpu_sim::pipeline::{overlapped, serial, BlockJob};
use cumf_gpu_sim::{GpuSpec, LinkSpec, SgdUpdateCost};

use crate::concurrent::{run_epoch, ExecMode};
use crate::feature::{Element, FactorMatrix};
use crate::lrate::{LearningRate, Schedule};
use crate::metrics::{rmse, Trace, TracePoint};
use crate::partition::{schedule_epoch, BlockId, Grid};
use crate::sched::{BatchHogwildStream, UpdateStream};

/// Configuration of a partitioned multi-GPU run.
#[derive(Debug, Clone)]
pub struct MultiGpuConfig {
    /// Feature dimension.
    pub k: u32,
    /// Regularisation λ.
    pub lambda: f32,
    /// Learning-rate schedule.
    pub schedule: Schedule,
    /// Epochs to run.
    pub epochs: u32,
    /// Grid rows (P-segments).
    pub grid_i: u32,
    /// Grid columns (Q-segments).
    pub grid_j: u32,
    /// Number of GPUs.
    pub gpus: u32,
    /// Parallel workers (thread blocks) per GPU.
    pub workers_per_gpu: u32,
    /// Batch-Hogwild! fetch size within a block.
    pub batch: u32,
    /// RNG seed.
    pub seed: u64,
    /// Abort when test RMSE exceeds this.
    pub divergence_ceiling: f64,
    /// If false, disable §6.2's transfer/compute overlap (ablation).
    pub overlap: bool,
    /// Enforce the §7.6 rule `grid ≥ gpus×gpus... (i ≥ 2·gpus and
    /// j ≥ 2·gpus)` strictly; set false to reproduce the failure modes.
    pub enforce_grid_rule: bool,
}

impl MultiGpuConfig {
    /// Defaults mirroring the paper's Hugewiki single-GPU staging setup.
    pub fn new(k: u32, grid_i: u32, grid_j: u32, gpus: u32) -> Self {
        MultiGpuConfig {
            k,
            lambda: 0.05,
            schedule: Schedule::paper_default(0.08, 0.3),
            epochs: 10,
            grid_i,
            grid_j,
            gpus,
            workers_per_gpu: 64,
            batch: 64,
            seed: 42,
            divergence_ceiling: 1e3,
            overlap: true,
            enforce_grid_rule: false,
        }
    }
}

/// Timing summary of one multi-GPU epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochTiming {
    /// Simulated seconds for the epoch (max over GPUs, plus sync).
    pub seconds: f64,
    /// Pure compute seconds (max over GPUs).
    pub compute_seconds: f64,
    /// Pure transfer seconds (max over GPUs).
    pub transfer_seconds: f64,
    /// GPU-wave slots that idled for lack of independent blocks.
    pub idle_slots: usize,
}

/// Result of a partitioned run.
#[derive(Debug, Clone)]
pub struct MultiGpuResult<E: Element> {
    /// Learned row factors.
    pub p: FactorMatrix<E>,
    /// Learned column factors.
    pub q: FactorMatrix<E>,
    /// Convergence trace (RMSE vs simulated time).
    pub trace: Trace,
    /// Per-epoch timing breakdown.
    pub timings: Vec<EpochTiming>,
    /// True if training diverged.
    pub diverged: bool,
}

/// Trains with the partitioned multi-GPU pipeline on the given (simulated)
/// GPU and interconnect.
pub fn train_partitioned<E: Element>(
    train: &CooMatrix,
    test: &CooMatrix,
    config: &MultiGpuConfig,
    gpu: &GpuSpec,
    link: &LinkSpec,
) -> MultiGpuResult<E> {
    assert!(!train.is_empty(), "training set is empty");
    assert!(config.gpus >= 1, "need at least one GPU");
    if config.enforce_grid_rule && config.gpus > 1 {
        // §7.6: "when cuMF_SGD uses two GPUs, R should at least be divided
        // into 4×4 blocks".
        assert!(
            config.grid_i >= 2 * config.gpus && config.grid_j >= 2 * config.gpus,
            "grid {}x{} too small for {} GPUs (need >= {}x{})",
            config.grid_i,
            config.grid_j,
            config.gpus,
            2 * config.gpus,
            2 * config.gpus
        );
    }
    let grid = Grid::build(train, config.grid_i, config.grid_j);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut p: FactorMatrix<E> = FactorMatrix::random_init(train.rows(), config.k, &mut rng);
    let mut q: FactorMatrix<E> = FactorMatrix::random_init(train.cols(), config.k, &mut rng);

    let cost = SgdUpdateCost {
        k: config.k,
        precision: if E::BYTES == 2 {
            cumf_gpu_sim::Precision::F16
        } else {
            cumf_gpu_sim::Precision::F32
        },
        rating_access: cumf_gpu_sim::RatingAccess::Streamed,
    };
    let mut trace = Trace::default();
    let mut timings = Vec::with_capacity(config.epochs as usize);
    let mut lr = LearningRate::new(config.schedule.clone());
    let mut seconds = 0.0f64;
    let mut updates = 0u64;
    let mut diverged = false;

    for epoch in 0..config.epochs {
        let gamma = lr.gamma(epoch);
        let schedule = schedule_epoch(&grid, config.gpus, &mut rng);

        // --- Convergence: execute every block's updates (wave by wave;
        // independence makes program order exact).
        for wave in &schedule.waves {
            for &slot in wave {
                if let Some(block_id) = slot {
                    updates +=
                        execute_block(train, &grid, block_id, &mut p, &mut q, config, gamma, epoch);
                }
            }
        }

        // --- Timing: per-GPU pipeline of its assigned blocks.
        let timing = epoch_timing(&schedule.waves, &grid, config, &cost, gpu, link);
        seconds += timing.seconds;
        timings.push(timing);

        let test_rmse = rmse(test, &p, &q);
        lr.observe(test_rmse);
        trace.push(TracePoint {
            epoch: epoch + 1,
            updates,
            rmse: test_rmse,
            seconds,
        });
        if !test_rmse.is_finite() || test_rmse > config.divergence_ceiling {
            diverged = true;
            break;
        }
    }

    MultiGpuResult {
        p,
        q,
        trace,
        timings,
        diverged,
    }
}

/// Runs one block's SGD updates with batch-Hogwild! semantics confined to
/// the block's coordinate window.
#[allow(clippy::too_many_arguments)]
fn execute_block<E: Element>(
    train: &CooMatrix,
    grid: &Grid,
    id: BlockId,
    p: &mut FactorMatrix<E>,
    q: &mut FactorMatrix<E>,
    config: &MultiGpuConfig,
    gamma: f32,
    epoch: u32,
) -> u64 {
    let samples = grid.block(id);
    if samples.is_empty() {
        return 0;
    }
    // Materialise the block as a COO window in *global* coordinates: the
    // engine updates P/Q rows directly, mirroring the device-side segments
    // being written back (§6.1).
    let mut block = CooMatrix::with_capacity(train.rows(), train.cols(), samples.len());
    for &s in samples {
        let e = train.get(s);
        block.push(e.u, e.v, e.r);
    }
    let workers = (config.workers_per_gpu as usize).min(samples.len().max(1));
    let mut stream = BatchHogwildStream::new(block.nnz(), workers, config.batch as usize);
    stream.begin_epoch(epoch);
    let stats = run_epoch(
        &block,
        p,
        q,
        &mut stream,
        gamma,
        config.lambda,
        ExecMode::StaleAdditive,
    );
    stats.updates
}

/// Computes the epoch's simulated time: each GPU pipelines its block
/// sequence (H2D block+segments, compute, D2H segments); the epoch ends
/// when the slowest GPU finishes.
fn epoch_timing(
    waves: &[Vec<Option<BlockId>>],
    grid: &Grid,
    config: &MultiGpuConfig,
    cost: &SgdUpdateCost,
    gpu: &GpuSpec,
    link: &LinkSpec,
) -> EpochTiming {
    let elem_bytes = cost.precision.bytes() as f64;
    let k = config.k as f64;
    let mut worst = EpochTiming {
        seconds: 0.0,
        compute_seconds: 0.0,
        transfer_seconds: 0.0,
        idle_slots: 0,
    };
    for g in 0..config.gpus as usize {
        let jobs: Vec<BlockJob> = waves
            .iter()
            .filter_map(|wave| wave[g])
            .map(|id| {
                let samples = grid.block(id).len() as f64;
                let seg_bytes = (grid.row_range(id.bi).len() as f64
                    + grid.col_range(id.bj).len() as f64)
                    * k
                    * elem_bytes;
                BlockJob {
                    h2d_bytes: samples * 12.0 + seg_bytes,
                    compute_bytes: samples * cost.bytes() as f64,
                    d2h_bytes: seg_bytes,
                }
            })
            .collect();
        let result = if config.overlap {
            overlapped(&jobs, gpu, link, config.workers_per_gpu)
        } else {
            serial(&jobs, gpu, link, config.workers_per_gpu)
        };
        if result.makespan > worst.seconds {
            worst.seconds = result.makespan;
            worst.compute_seconds = result.compute_time;
            worst.transfer_seconds = result.transfer_time;
        }
    }
    worst.idle_slots = waves
        .iter()
        .flat_map(|w| w.iter())
        .filter(|b| b.is_none())
        .count();
    // Inter-GPU synchronisation: segments exchanged through host memory at
    // wave boundaries when more than one GPU runs (the sub-linear-scaling
    // cost the paper reports in §7.7).
    if config.gpus > 1 {
        worst.seconds += waves.len() as f64 * link.latency_s * config.gpus as f64;
    }
    EpochTiming { ..worst }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_data::synth::{generate, SynthConfig};
    use cumf_gpu_sim::{PCIE3_X16, TITAN_X_MAXWELL};

    fn dataset(m: u32, n: u32, train: usize) -> cumf_data::synth::SynthDataset {
        generate(&SynthConfig {
            m,
            n,
            k_true: 4,
            train_samples: train,
            test_samples: train / 10,
            noise_std: 0.1,
            row_skew: 0.4,
            col_skew: 0.4,
            rating_offset: 1.0,
            seed: 21,
        })
    }

    fn config(i: u32, j: u32, gpus: u32) -> MultiGpuConfig {
        let mut c = MultiGpuConfig::new(6, i, j, gpus);
        c.epochs = 10;
        c.workers_per_gpu = 8;
        c.batch = 32;
        c.schedule = Schedule::paper_default(0.1, 0.1);
        c.lambda = 0.02;
        c
    }

    #[test]
    fn single_gpu_partitioned_converges() {
        let d = dataset(400, 300, 20_000);
        let r = train_partitioned::<f32>(
            &d.train,
            &d.test,
            &config(4, 1, 1),
            &TITAN_X_MAXWELL,
            &PCIE3_X16,
        );
        assert!(!r.diverged);
        assert!(
            r.trace.final_rmse().unwrap() < 0.25,
            "rmse {}",
            r.trace.final_rmse().unwrap()
        );
        assert!(r.timings.iter().all(|t| t.seconds > 0.0));
    }

    #[test]
    fn partitioned_matches_unpartitioned_quality() {
        let d = dataset(400, 300, 20_000);
        let part = train_partitioned::<f32>(
            &d.train,
            &d.test,
            &config(4, 4, 1),
            &TITAN_X_MAXWELL,
            &PCIE3_X16,
        );
        let whole = train_partitioned::<f32>(
            &d.train,
            &d.test,
            &config(1, 1, 1),
            &TITAN_X_MAXWELL,
            &PCIE3_X16,
        );
        let a = part.trace.final_rmse().unwrap();
        let b = whole.trace.final_rmse().unwrap();
        assert!((a - b).abs() < 0.08, "partitioned {a} vs whole {b}");
    }

    #[test]
    fn two_gpus_same_quality_less_time_per_epoch() {
        let d = dataset(600, 600, 30_000);
        let one = train_partitioned::<f32>(
            &d.train,
            &d.test,
            &config(8, 8, 1),
            &TITAN_X_MAXWELL,
            &PCIE3_X16,
        );
        let two = train_partitioned::<f32>(
            &d.train,
            &d.test,
            &config(8, 8, 2),
            &TITAN_X_MAXWELL,
            &PCIE3_X16,
        );
        assert!(!two.diverged);
        // Same convergence quality...
        let a = one.trace.final_rmse().unwrap();
        let b = two.trace.final_rmse().unwrap();
        assert!((a - b).abs() < 0.08, "1-gpu {a} vs 2-gpu {b}");
        // ...but faster epochs (sub-linear: transfers + sync, §7.7).
        let t1: f64 = one.timings.iter().map(|t| t.seconds).sum();
        let t2: f64 = two.timings.iter().map(|t| t.seconds).sum();
        assert!(t2 < t1, "2 GPUs {t2}s should beat 1 GPU {t1}s");
        assert!(t2 > t1 / 2.0, "scaling must be sub-linear, got {t1}/{t2}");
    }

    #[test]
    fn overlap_beats_no_overlap() {
        let d = dataset(400, 300, 20_000);
        let mut on = config(8, 1, 1);
        on.overlap = true;
        let mut off = config(8, 1, 1);
        off.overlap = false;
        let r_on = train_partitioned::<f32>(&d.train, &d.test, &on, &TITAN_X_MAXWELL, &PCIE3_X16);
        let r_off = train_partitioned::<f32>(&d.train, &d.test, &off, &TITAN_X_MAXWELL, &PCIE3_X16);
        let t_on: f64 = r_on.timings.iter().map(|t| t.seconds).sum();
        let t_off: f64 = r_off.timings.iter().map(|t| t.seconds).sum();
        assert!(t_on < t_off, "overlap {t_on} must beat serial {t_off}");
        // Same numerics either way.
        assert_eq!(
            r_on.trace.final_rmse().unwrap(),
            r_off.trace.final_rmse().unwrap()
        );
    }

    #[test]
    fn grid_rule_enforced_when_requested() {
        let d = dataset(100, 100, 1000);
        let mut c = config(2, 2, 2);
        c.enforce_grid_rule = true;
        let result = std::panic::catch_unwind(|| {
            train_partitioned::<f32>(&d.train, &d.test, &c, &TITAN_X_MAXWELL, &PCIE3_X16)
        });
        assert!(result.is_err(), "2x2 grid with 2 GPUs must be rejected");
    }
}
