//! Multi-GPU / out-of-core training (§6).
//!
//! For data sets that exceed one device's memory, the solver partitions R
//! into an `i × j` [`Grid`], schedules waves of mutually-independent blocks
//! across `g` (simulated) GPUs, executes each block's SGD updates with the
//! single-GPU engine, and accounts time through the transfer/compute
//! pipeline model of `cumf-gpu-sim` (H2D of the block + its P/Q segments,
//! compute, D2H of the segments, with §6.2's copy/compute overlap).
//!
//! Because concurrently-scheduled blocks are independent (Eq. 6), their
//! updates touch disjoint P/Q rows: executing them back-to-back in program
//! order is *numerically identical* to executing them in parallel, so
//! convergence results are exact while timing comes from the machine model.
//!
//! This module is a thin client of the layered [`crate::engine`]: the block
//! scheduling/execution lives in
//! [`PartitionedBackend`], the pipeline
//! clock in [`BackendTime`], and the epoch loop
//! in [`EpochPipeline`]. That seam is what
//! lets the partitioned path train the *biased* model too (set
//! [`MultiGpuConfig::bias`]) — a combination the pre-engine monolith could
//! not express.

use cumf_rng::ChaCha8Rng;
use cumf_rng::SeedableRng;

use cumf_data::CooMatrix;
use cumf_gpu_sim::{GpuSpec, LinkSpec, SgdUpdateCost};

use crate::engine::{
    BackendTime, BiasTerms, DivergenceGuard, EngineModel, EpochObserver, EpochPipeline,
    PartitionedBackend,
};
use crate::feature::{Element, FactorMatrix};
use crate::lrate::Schedule;
use crate::metrics::Trace;
use crate::partition::Grid;

/// Configuration of a partitioned multi-GPU run.
#[derive(Debug, Clone)]
pub struct MultiGpuConfig {
    /// Feature dimension.
    pub k: u32,
    /// Regularisation λ.
    pub lambda: f32,
    /// Learning-rate schedule.
    pub schedule: Schedule,
    /// Epochs to run.
    pub epochs: u32,
    /// Grid rows (P-segments).
    pub grid_i: u32,
    /// Grid columns (Q-segments).
    pub grid_j: u32,
    /// Number of GPUs.
    pub gpus: u32,
    /// Parallel workers (thread blocks) per GPU.
    pub workers_per_gpu: u32,
    /// Batch-Hogwild! fetch size within a block.
    pub batch: u32,
    /// RNG seed.
    pub seed: u64,
    /// Abort when test RMSE exceeds this.
    pub divergence_ceiling: f64,
    /// If false, disable §6.2's transfer/compute overlap (ablation).
    pub overlap: bool,
    /// Enforce the §7.6 rule `grid ≥ gpus×gpus... (i ≥ 2·gpus and
    /// j ≥ 2·gpus)` strictly; set false to reproduce the failure modes.
    pub enforce_grid_rule: bool,
    /// Train the biased model (`μ + b_u + b_v + p·q`) instead of the plain
    /// factorization.
    pub bias: bool,
}

impl MultiGpuConfig {
    /// Defaults mirroring the paper's Hugewiki single-GPU staging setup.
    pub fn new(k: u32, grid_i: u32, grid_j: u32, gpus: u32) -> Self {
        MultiGpuConfig {
            k,
            lambda: 0.05,
            schedule: Schedule::paper_default(0.08, 0.3),
            epochs: 10,
            grid_i,
            grid_j,
            gpus,
            workers_per_gpu: 64,
            batch: 64,
            seed: 42,
            divergence_ceiling: 1e3,
            overlap: true,
            enforce_grid_rule: false,
            bias: false,
        }
    }
}

/// Timing summary of one multi-GPU epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochTiming {
    /// Simulated seconds for the epoch (max over GPUs, plus sync).
    pub seconds: f64,
    /// Pure compute seconds (max over GPUs).
    pub compute_seconds: f64,
    /// Pure transfer seconds (max over GPUs).
    pub transfer_seconds: f64,
    /// GPU-wave slots that idled for lack of independent blocks.
    pub idle_slots: usize,
}

/// Result of a partitioned run.
#[derive(Debug, Clone)]
pub struct MultiGpuResult<E: Element> {
    /// Learned row factors.
    pub p: FactorMatrix<E>,
    /// Learned column factors.
    pub q: FactorMatrix<E>,
    /// Bias terms, when [`MultiGpuConfig::bias`] was set.
    pub bias: Option<BiasTerms>,
    /// Convergence trace (RMSE vs simulated time).
    pub trace: Trace,
    /// Per-epoch timing breakdown.
    pub timings: Vec<EpochTiming>,
    /// True if training diverged.
    pub diverged: bool,
}

/// Trains with the partitioned multi-GPU pipeline on the given (simulated)
/// GPU and interconnect.
pub fn train_partitioned<E: Element>(
    train: &CooMatrix,
    test: &CooMatrix,
    config: &MultiGpuConfig,
    gpu: &GpuSpec,
    link: &LinkSpec,
) -> MultiGpuResult<E> {
    assert!(!train.is_empty(), "training set is empty");
    assert!(config.gpus >= 1, "need at least one GPU");
    if config.enforce_grid_rule && config.gpus > 1 {
        // §7.6: "when cuMF_SGD uses two GPUs, R should at least be divided
        // into 4×4 blocks".
        assert!(
            config.grid_i >= 2 * config.gpus && config.grid_j >= 2 * config.gpus,
            "grid {}x{} too small for {} GPUs (need >= {}x{})",
            config.grid_i,
            config.grid_j,
            config.gpus,
            2 * config.gpus,
            2 * config.gpus
        );
    }
    let grid = Grid::build(train, config.grid_i, config.grid_j);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut model: EngineModel<E> = if config.bias {
        EngineModel::init_biased(train, config.k, &mut rng)
    } else {
        EngineModel::init_unbiased(train, config.k, &mut rng)
    };

    let cost = SgdUpdateCost {
        k: config.k,
        precision: if E::BYTES == 2 {
            cumf_gpu_sim::Precision::F16
        } else {
            cumf_gpu_sim::Precision::F32
        },
        rating_access: cumf_gpu_sim::RatingAccess::Streamed,
    };
    let mut backend = PartitionedBackend::new(
        train,
        grid,
        config.gpus,
        config.workers_per_gpu,
        config.batch,
        config.overlap,
        cost,
        gpu,
        link,
        rng,
    );
    let mut time = BackendTime;
    let mut guard = DivergenceGuard::new(config.divergence_ceiling);
    let mut observers: Vec<&mut dyn EpochObserver<E>> = vec![&mut guard];

    let pipeline = EpochPipeline {
        label: "partitioned",
        epochs: config.epochs,
        lambda: config.lambda,
        schedule: config.schedule.clone(),
    };
    let run = pipeline.run(
        &mut model,
        &mut backend,
        &mut time,
        &mut observers,
        test,
        None,
    );

    MultiGpuResult {
        p: model.p,
        q: model.q,
        bias: model.bias,
        trace: run.trace,
        timings: run.timings,
        diverged: run.diverged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_data::synth::{generate, SynthConfig};
    use cumf_gpu_sim::{PCIE3_X16, TITAN_X_MAXWELL};

    fn dataset(m: u32, n: u32, train: usize) -> cumf_data::synth::SynthDataset {
        generate(&SynthConfig {
            m,
            n,
            k_true: 4,
            train_samples: train,
            test_samples: train / 10,
            noise_std: 0.1,
            row_skew: 0.4,
            col_skew: 0.4,
            rating_offset: 1.0,
            seed: 21,
        })
    }

    fn config(i: u32, j: u32, gpus: u32) -> MultiGpuConfig {
        let mut c = MultiGpuConfig::new(6, i, j, gpus);
        c.epochs = 10;
        c.workers_per_gpu = 8;
        c.batch = 32;
        c.schedule = Schedule::paper_default(0.1, 0.1);
        c.lambda = 0.02;
        c
    }

    #[test]
    fn single_gpu_partitioned_converges() {
        let d = dataset(400, 300, 20_000);
        let r = train_partitioned::<f32>(
            &d.train,
            &d.test,
            &config(4, 1, 1),
            &TITAN_X_MAXWELL,
            &PCIE3_X16,
        );
        assert!(!r.diverged);
        assert!(
            r.trace.final_rmse().unwrap() < 0.25,
            "rmse {}",
            r.trace.final_rmse().unwrap()
        );
        assert!(r.timings.iter().all(|t| t.seconds > 0.0));
        assert!(r.bias.is_none());
    }

    #[test]
    fn partitioned_matches_unpartitioned_quality() {
        let d = dataset(400, 300, 20_000);
        let part = train_partitioned::<f32>(
            &d.train,
            &d.test,
            &config(4, 4, 1),
            &TITAN_X_MAXWELL,
            &PCIE3_X16,
        );
        let whole = train_partitioned::<f32>(
            &d.train,
            &d.test,
            &config(1, 1, 1),
            &TITAN_X_MAXWELL,
            &PCIE3_X16,
        );
        let a = part.trace.final_rmse().unwrap();
        let b = whole.trace.final_rmse().unwrap();
        assert!((a - b).abs() < 0.08, "partitioned {a} vs whole {b}");
    }

    #[test]
    fn two_gpus_same_quality_less_time_per_epoch() {
        let d = dataset(600, 600, 30_000);
        let one = train_partitioned::<f32>(
            &d.train,
            &d.test,
            &config(8, 8, 1),
            &TITAN_X_MAXWELL,
            &PCIE3_X16,
        );
        let two = train_partitioned::<f32>(
            &d.train,
            &d.test,
            &config(8, 8, 2),
            &TITAN_X_MAXWELL,
            &PCIE3_X16,
        );
        assert!(!two.diverged);
        // Same convergence quality...
        let a = one.trace.final_rmse().unwrap();
        let b = two.trace.final_rmse().unwrap();
        assert!((a - b).abs() < 0.08, "1-gpu {a} vs 2-gpu {b}");
        // ...but faster epochs (sub-linear: transfers + sync, §7.7).
        let t1: f64 = one.timings.iter().map(|t| t.seconds).sum();
        let t2: f64 = two.timings.iter().map(|t| t.seconds).sum();
        assert!(t2 < t1, "2 GPUs {t2}s should beat 1 GPU {t1}s");
        assert!(t2 > t1 / 2.0, "scaling must be sub-linear, got {t1}/{t2}");
    }

    #[test]
    fn overlap_beats_no_overlap() {
        let d = dataset(400, 300, 20_000);
        let mut on = config(8, 1, 1);
        on.overlap = true;
        let mut off = config(8, 1, 1);
        off.overlap = false;
        let r_on = train_partitioned::<f32>(&d.train, &d.test, &on, &TITAN_X_MAXWELL, &PCIE3_X16);
        let r_off = train_partitioned::<f32>(&d.train, &d.test, &off, &TITAN_X_MAXWELL, &PCIE3_X16);
        let t_on: f64 = r_on.timings.iter().map(|t| t.seconds).sum();
        let t_off: f64 = r_off.timings.iter().map(|t| t.seconds).sum();
        assert!(t_on < t_off, "overlap {t_on} must beat serial {t_off}");
        // Same numerics either way.
        assert_eq!(
            r_on.trace.final_rmse().unwrap(),
            r_off.trace.final_rmse().unwrap()
        );
    }

    #[test]
    fn grid_rule_enforced_when_requested() {
        let d = dataset(100, 100, 1000);
        let mut c = config(2, 2, 2);
        c.enforce_grid_rule = true;
        let result = std::panic::catch_unwind(|| {
            train_partitioned::<f32>(&d.train, &d.test, &c, &TITAN_X_MAXWELL, &PCIE3_X16)
        });
        assert!(result.is_err(), "2x2 grid with 2 GPUs must be rejected");
    }

    #[test]
    fn biased_partitioned_trains_end_to_end() {
        // The engine seam's new combination: bias terms + grid partitioning.
        let d = generate(&SynthConfig {
            m: 400,
            n: 300,
            k_true: 4,
            train_samples: 20_000,
            test_samples: 2_000,
            noise_std: 0.1,
            row_skew: 0.4,
            col_skew: 0.4,
            rating_offset: 3.5,
            seed: 91,
        });
        let mut c = config(4, 4, 2);
        c.bias = true;
        let r = train_partitioned::<f32>(&d.train, &d.test, &c, &TITAN_X_MAXWELL, &PCIE3_X16);
        assert!(!r.diverged);
        let bias = r.bias.expect("biased run must return bias terms");
        assert!(bias.mu > 3.0, "global mean must absorb the offset");
        assert!(
            r.trace.final_rmse().unwrap() < 0.3,
            "rmse {}",
            r.trace.final_rmse().unwrap()
        );
    }
}
