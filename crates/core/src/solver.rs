//! The single-GPU cuMF_SGD training loop.
//!
//! A thin client of the layered [`crate::engine`]: it translates a
//! [`SolverConfig`] into a scheduling policy ([`crate::sched`]), an
//! execution engine ([`crate::engine::exec`]), a time domain, and the
//! solver's observer stack (obs probes, divergence guard, optional
//! checkpointing), then hands the epoch loop to
//! [`EpochPipeline`] — producing the
//! per-epoch convergence traces that are the raw material of every
//! RMSE-vs-time figure in the paper.

use std::path::PathBuf;

use cumf_rng::ChaCha8Rng;
use cumf_rng::SeedableRng;

use cumf_data::CooMatrix;

use crate::concurrent::{EpochStats, ExecMode};
use crate::engine::{
    engine_for, load_checkpoint, Checkpointer, DivergenceGuard, EngineModel, EpochObserver,
    EpochPipeline, ModelTime, NoSimTime, ObsProbes, StreamBackend, TimeDomain,
};
use crate::feature::{Element, FactorMatrix};
use crate::kernel::CostCert;
use crate::lrate::Schedule;
use crate::metrics::Trace;
use crate::model_io::ModelIoError;
use crate::stale::StaleVerdict;

use crate::sched::{
    resolve_exec_mode, BatchHogwildStream, HogwildStream, LibmfTableStream, SerialStream,
    UpdateStream, Verdict, WavefrontStream,
};

pub use crate::engine::time::TimeModel;
pub use crate::engine::TrainReport;

/// Which scheduling policy the solver runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// One worker, storage order. The convergence reference.
    Serial,
    /// Plain Hogwild! with uniformly random picks.
    Hogwild {
        /// Parallel workers.
        workers: u32,
    },
    /// §5.1 batch-Hogwild! — the paper's single-GPU default.
    BatchHogwild {
        /// Parallel workers (thread blocks).
        workers: u32,
        /// Consecutive samples per grab (`f`, default 256).
        batch: u32,
    },
    /// §5.2 wavefront-update.
    Wavefront {
        /// Parallel workers (grid rows).
        workers: u32,
        /// Grid columns (≥ 2 × workers).
        cols: u32,
    },
    /// LIBMF's global-table blocking (the baseline policy).
    LibmfTable {
        /// Parallel workers (CPU threads).
        workers: u32,
        /// Grid dimension (a×a blocks).
        a: u32,
    },
}

impl Scheme {
    /// Number of parallel workers the scheme runs.
    pub fn workers(&self) -> u32 {
        match *self {
            Scheme::Serial => 1,
            Scheme::Hogwild { workers }
            | Scheme::BatchHogwild { workers, .. }
            | Scheme::Wavefront { workers, .. }
            | Scheme::LibmfTable { workers, .. } => workers,
        }
    }

    /// The execution semantics the scheme needs: lock-free policies race
    /// (stale-additive); blocking policies are conflict-free (sequential).
    pub fn default_mode(&self) -> ExecMode {
        match self {
            Scheme::Serial | Scheme::Wavefront { .. } | Scheme::LibmfTable { .. } => {
                ExecMode::Sequential
            }
            Scheme::Hogwild { .. } | Scheme::BatchHogwild { .. } => ExecMode::StaleAdditive,
        }
    }

    /// The rating-fetch pattern the scheme's memory traffic follows:
    /// plain Hogwild! picks samples at random (each fetch drags a full
    /// cache line), every other policy streams samples in order.
    pub fn rating_access(&self) -> cumf_gpu_sim::RatingAccess {
        match self {
            Scheme::Hogwild { .. } => cumf_gpu_sim::RatingAccess::RandomLine { line_bytes: 128 },
            _ => cumf_gpu_sim::RatingAccess::Streamed,
        }
    }

    /// Policy name.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Serial => "serial",
            Scheme::Hogwild { .. } => "hogwild",
            Scheme::BatchHogwild { .. } => "batch-hogwild",
            Scheme::Wavefront { .. } => "wavefront",
            Scheme::LibmfTable { .. } => "libmf-table",
        }
    }

    /// The deterministic update stream implementing this policy over `n`
    /// training samples, derived from the run's `seed`.
    pub fn stream(&self, train: &CooMatrix, seed: u64) -> Box<dyn UpdateStream> {
        match *self {
            Scheme::Serial => Box::new(SerialStream::new(train.nnz())),
            Scheme::Hogwild { workers } => Box::new(HogwildStream::new(
                train.nnz(),
                workers as usize,
                seed ^ 0x5eed,
            )),
            Scheme::BatchHogwild { workers, batch } => Box::new(BatchHogwildStream::new(
                train.nnz(),
                workers as usize,
                batch as usize,
            )),
            Scheme::Wavefront { workers, cols } => Box::new(WavefrontStream::new(
                train,
                workers as usize,
                cols as usize,
                seed ^ 0x3afe,
            )),
            Scheme::LibmfTable { workers, a } => Box::new(LibmfTableStream::new(
                train,
                workers as usize,
                a as usize,
                seed ^ 0x71b,
            )),
        }
    }
}

/// Solver configuration.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Feature dimension of the model.
    pub k: u32,
    /// Regularisation λ (shared by P and Q, as in the paper).
    pub lambda: f32,
    /// Learning-rate schedule.
    pub schedule: Schedule,
    /// Epochs (full passes) to run.
    pub epochs: u32,
    /// Scheduling policy.
    pub scheme: Scheme,
    /// Seed for initialisation and policy randomness.
    pub seed: u64,
    /// Execution-mode override (defaults to [`Scheme::default_mode`]).
    pub mode: Option<ExecMode>,
    /// Abort and flag divergence when test RMSE exceeds this ceiling.
    pub divergence_ceiling: f64,
}

impl SolverConfig {
    /// A sensible default configuration for a given scheme.
    pub fn new(k: u32, scheme: Scheme) -> Self {
        SolverConfig {
            k,
            lambda: 0.05,
            schedule: Schedule::paper_default(0.08, 0.3),
            epochs: 20,
            scheme,
            seed: 42,
            mode: None,
            divergence_ceiling: 1e3,
        }
    }
}

/// Where, how often, and whether to resume from a training checkpoint.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Checkpoint file path.
    pub path: PathBuf,
    /// Save after every `every`-th epoch.
    pub every: u32,
    /// If true and `path` exists, continue the checkpointed run instead of
    /// starting fresh.
    pub resume: bool,
}

/// Output of a training run.
#[derive(Debug, Clone)]
pub struct TrainResult<E: Element> {
    /// Learned row factors.
    pub p: FactorMatrix<E>,
    /// Learned column factors.
    pub q: FactorMatrix<E>,
    /// Per-epoch convergence trace.
    pub trace: Trace,
    /// Per-epoch execution statistics.
    pub epoch_stats: Vec<EpochStats>,
    /// End-of-run summary snapshot.
    pub report: TrainReport,
    /// True if training hit the divergence ceiling and stopped early.
    pub diverged: bool,
    /// Execution mode actually used (after certificate resolution).
    pub exec_mode: ExecMode,
    /// The schedule prover's verdict, when sequential execution was
    /// requested: the consumed [`crate::sched::ConflictCert`], or the
    /// [`crate::sched::ConflictWitness`] that forced a downgrade to the
    /// stale-additive conflict engine. `None` for racy-by-design modes.
    pub schedule_verdict: Option<Verdict>,
    /// The staleness certifier's verdict, when racy execution was the
    /// resolved default: the [`crate::stale::StaleCert`] bounding the
    /// run's per-row staleness τ and checking the lr·τ condition, or
    /// the [`crate::stale::StaleWitness`] that forced a downgrade to
    /// sequential execution. `None` for explicit mode overrides and
    /// non-racy schedules.
    pub stale_verdict: Option<StaleVerdict>,
    /// The Eq. 5 cost certificate for this run's kernel: kernel-contract
    /// bytes/flops per update certified against [`crate::SgdUpdateCost`]
    /// for the run's `k`, storage precision, and rating-access pattern
    /// (plus the time model's drift, when one priced the trace).
    pub cost_cert: CostCert,
}

impl<E: Element> TrainResult<E> {
    /// Total updates across all executed epochs.
    pub fn total_updates(&self) -> u64 {
        self.epoch_stats.iter().map(|s| s.updates).sum()
    }
}

/// Trains a factorization of `train`, evaluating test RMSE after every
/// epoch. Generic over the storage element: `f32`, or `F16` for the
/// paper's half-precision mode.
pub fn train<E: Element>(
    train: &CooMatrix,
    test: &CooMatrix,
    config: &SolverConfig,
    time: Option<&TimeModel>,
) -> TrainResult<E> {
    train_resumable(train, test, config, time, None)
        .expect("training without checkpointing performs no IO")
}

/// [`train`], with optional checkpoint/resume. With `Some(spec)`, a
/// checkpoint is written every `spec.every` epochs; with `spec.resume`
/// set and an existing checkpoint at `spec.path`, the run continues where
/// it stopped — deterministic streams and the checkpointed LR state make
/// the result bit-identical to an uninterrupted run.
pub fn train_resumable<E: Element>(
    train: &CooMatrix,
    test: &CooMatrix,
    config: &SolverConfig,
    time: Option<&TimeModel>,
    checkpoint: Option<&CheckpointSpec>,
) -> Result<TrainResult<E>, ModelIoError> {
    assert!(config.k > 0, "k must be positive");
    assert!(!train.is_empty(), "training set is empty");

    // The run's cost certificate: the kernel's memory contract for this
    // (k, precision, rating-access) checked against the Eq. 5 model, with
    // the time model's pricing drift recorded when one is supplied.
    let cost_cert = CostCert::certify::<E>(
        config.k,
        config.scheme.rating_access(),
        time.map(|tm| &tm.cost),
    );

    let (mut model, resume_state) = match checkpoint {
        Some(spec) if spec.resume && spec.path.exists() => {
            let (model, state) = load_checkpoint::<E>(&spec.path)?;
            if model.p.rows() != train.rows()
                || model.q.rows() != train.cols()
                || model.p.k() != config.k
            {
                return Err(ModelIoError::Format(format!(
                    "checkpoint shape {}x{} k={} does not match run {}x{} k={}",
                    model.p.rows(),
                    model.q.rows(),
                    model.p.k(),
                    train.rows(),
                    train.cols(),
                    config.k
                )));
            }
            (model, Some(state))
        }
        _ => {
            let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
            (EngineModel::init_unbiased(train, config.k, &mut rng), None)
        }
    };

    // Sequential execution is only exact for conflict-free schedules, so
    // it must be *proven*: drive a probe instance of the schedule through
    // the conflict prover and consume the certificate (or downgrade on a
    // witness). Explicit `mode` overrides skip the prover — the caller
    // asked for those semantics by name.
    let (mode, schedule_verdict) = match config.mode {
        Some(m) => (m, None),
        None => {
            let default = config.scheme.default_mode();
            if default == ExecMode::Sequential && config.scheme.workers() > 1 {
                let mut probe = config.scheme.stream(train, config.seed);
                resolve_exec_mode(train, probe.as_mut(), default, config.epochs)
            } else {
                (default, None)
            }
        }
    };
    // Racy execution must also be *earned*: lift the solver's Hogwild
    // path into the asynchrony IR and certify bounded staleness plus the
    // lr·τ condition against the configured schedule; a refuted
    // configuration is serialised. Explicit `mode` overrides skip it,
    // and a run the conflict prover already adjudicated keeps that
    // verdict's mode (no downgrade ping-pong).
    let (mode, stale_verdict) = if config.mode.is_none() && schedule_verdict.is_none() {
        let spec = crate::stale::PathSpec::solver_hogwild(
            config.scheme.workers(),
            train.rows().min(train.cols()),
        );
        crate::stale::resolve_stale_mode(&spec, &config.schedule, config.epochs, mode)
    } else {
        (mode, None)
    };
    let thread_batch = match config.scheme {
        Scheme::BatchHogwild { batch, .. } => batch as usize,
        _ => crate::concurrent::DEFAULT_THREAD_BATCH,
    };
    let mut backend = StreamBackend::new(
        train,
        config.scheme.stream(train, config.seed),
        engine_for::<E>(mode, config.scheme.workers() as usize, thread_batch),
        config.scheme.workers(),
    );

    let mut time_domain: Box<dyn TimeDomain> = match time {
        Some(tm) => Box::new(ModelTime(tm.clone())),
        None => Box::new(NoSimTime),
    };

    let mut probes = ObsProbes::new();
    let mut guard = DivergenceGuard::new(config.divergence_ceiling);
    let mut checkpointer = checkpoint.map(|spec| Checkpointer::new(&spec.path, spec.every));
    let mut observers: Vec<&mut dyn EpochObserver<E>> = vec![&mut probes, &mut guard];
    if let Some(ckpt) = checkpointer.as_mut() {
        observers.push(ckpt);
    }

    let pipeline = EpochPipeline {
        label: config.scheme.name(),
        epochs: config.epochs,
        lambda: config.lambda,
        schedule: config.schedule.clone(),
    };
    let run = pipeline.run(
        &mut model,
        &mut backend,
        time_domain.as_mut(),
        &mut observers,
        test,
        resume_state,
    );

    Ok(TrainResult {
        p: model.p,
        q: model.q,
        trace: run.trace,
        epoch_stats: run.epoch_stats,
        report: run.report,
        diverged: run.diverged,
        exec_mode: mode,
        schedule_verdict,
        stale_verdict,
        cost_cert,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::half::F16;
    use crate::SgdUpdateCost;
    use cumf_data::synth::{generate, SynthConfig};

    fn small_dataset() -> cumf_data::synth::SynthDataset {
        generate(&SynthConfig {
            m: 300,
            n: 200,
            k_true: 4,
            train_samples: 15_000,
            test_samples: 1_500,
            noise_std: 0.1,
            row_skew: 0.4,
            col_skew: 0.4,
            rating_offset: 1.0,
            seed: 11,
        })
    }

    fn base_config(scheme: Scheme) -> SolverConfig {
        SolverConfig {
            k: 6,
            lambda: 0.02,
            schedule: Schedule::paper_default(0.1, 0.1),
            epochs: 15,
            scheme,
            seed: 1,
            mode: None,
            divergence_ceiling: 1e3,
        }
    }

    #[test]
    fn serial_sgd_converges_towards_noise_floor() {
        let d = small_dataset();
        let r = train::<f32>(&d.train, &d.test, &base_config(Scheme::Serial), None);
        assert!(!r.diverged);
        let final_rmse = r.trace.final_rmse().unwrap();
        assert!(
            final_rmse < 0.2,
            "serial SGD should approach the 0.1 floor, got {final_rmse}"
        );
        // RMSE decreased substantially from epoch 1.
        assert!(r.trace.points[0].rmse > final_rmse);
        assert_eq!(r.total_updates(), 15_000 * 15);
    }

    #[test]
    fn batch_hogwild_matches_serial_convergence() {
        let d = small_dataset();
        let serial = train::<f32>(&d.train, &d.test, &base_config(Scheme::Serial), None);
        let bh = train::<f32>(
            &d.train,
            &d.test,
            &base_config(Scheme::BatchHogwild {
                workers: 8,
                batch: 64,
            }),
            None,
        );
        assert!(!bh.diverged);
        let s = serial.trace.final_rmse().unwrap();
        let b = bh.trace.final_rmse().unwrap();
        assert!(
            (b - s).abs() < 0.05,
            "batch-hogwild {b} should track serial {s} when s << min(m,n)"
        );
    }

    #[test]
    fn wavefront_converges() {
        let d = small_dataset();
        let r = train::<f32>(
            &d.train,
            &d.test,
            &base_config(Scheme::Wavefront {
                workers: 4,
                cols: 10,
            }),
            None,
        );
        assert!(!r.diverged);
        assert!(r.trace.final_rmse().unwrap() < 0.25);
        // Conflict-free: sequential mode used, so stalls are the only
        // parallel artefact.
        assert!(r.epoch_stats.iter().all(|s| s.updates == 15_000));
    }

    #[test]
    fn libmf_table_converges() {
        let d = small_dataset();
        let r = train::<f32>(
            &d.train,
            &d.test,
            &base_config(Scheme::LibmfTable { workers: 4, a: 10 }),
            None,
        );
        assert!(!r.diverged);
        assert!(r.trace.final_rmse().unwrap() < 0.25);
    }

    #[test]
    fn f16_storage_converges_like_f32() {
        // §4: half-precision storage "does not incur accuracy loss".
        let d = small_dataset();
        let cfg = base_config(Scheme::BatchHogwild {
            workers: 4,
            batch: 64,
        });
        let r32 = train::<f32>(&d.train, &d.test, &cfg, None);
        let r16 = train::<F16>(&d.train, &d.test, &cfg, None);
        let a = r32.trace.final_rmse().unwrap();
        let b = r16.trace.final_rmse().unwrap();
        assert!((a - b).abs() < 0.03, "f16 RMSE {b} must track f32 RMSE {a}");
    }

    #[test]
    fn massive_oversubscription_degrades_convergence() {
        // §7.5: convergence needs s << min(m, n). Crank s up to the matrix
        // dimension and conflicts must visibly hurt (slower convergence or
        // divergence) relative to the serial reference.
        let d = generate(&SynthConfig {
            m: 60,
            n: 40,
            k_true: 4,
            train_samples: 20_000,
            test_samples: 2_000,
            noise_std: 0.1,
            row_skew: 1.0,
            col_skew: 1.0,
            rating_offset: 0.0,
            seed: 12,
        });
        let mut cfg = base_config(Scheme::BatchHogwild {
            workers: 40,
            batch: 8,
        });
        cfg.schedule = Schedule::Fixed(0.5);
        // Pin the racy mode explicitly: the staleness certifier would
        // (correctly) refuse this configuration and serialise it, and
        // this test exists to demonstrate the very pathology it guards
        // against.
        cfg.mode = Some(ExecMode::StaleAdditive);
        let racy = train::<f32>(&d.train, &d.test, &cfg, None);
        let mut serial_cfg = base_config(Scheme::Serial);
        serial_cfg.schedule = Schedule::Fixed(0.5);
        let serial = train::<f32>(&d.train, &d.test, &serial_cfg, None);
        // A fully-diverged trace has no finite point (best_rmse = None).
        let serial_final = serial.trace.best_rmse().unwrap();
        let hurt = racy.diverged
            || racy
                .trace
                .best_rmse()
                .is_none_or(|best| best > serial_final * 1.05);
        assert!(
            hurt,
            "s=40 on a 60x40 matrix must hurt: racy {:?} vs serial {serial_final}",
            racy.trace.best_rmse()
        );
    }

    #[test]
    fn cost_certificate_attached_to_result() {
        let d = small_dataset();
        let r32 = train::<f32>(&d.train, &d.test, &base_config(Scheme::Serial), None);
        assert!(r32.cost_cert.is_certified(), "{}", r32.cost_cert);
        assert_eq!(r32.cost_cert.k, 6);
        assert_eq!(r32.cost_cert.precision, "f32");
        assert_eq!(r32.cost_cert.bytes_per_update, 12 + 16 * 6);
        assert_eq!(r32.cost_cert.time_model_drift, None);
        let r16 = train::<F16>(&d.train, &d.test, &base_config(Scheme::Serial), None);
        assert_eq!(r16.cost_cert.precision, "f16");
        assert_eq!(r16.cost_cert.bytes_per_update, 12 + 8 * 6);
        // Plain Hogwild! certifies under the random-line rating pattern.
        let rh = train::<f32>(
            &d.train,
            &d.test,
            &base_config(Scheme::Hogwild { workers: 4 }),
            None,
        );
        assert!(rh.cost_cert.is_certified(), "{}", rh.cost_cert);
        assert_eq!(rh.cost_cert.bytes_per_update, 128 + 16 * 6);
    }

    #[test]
    fn time_model_accumulates() {
        let d = small_dataset();
        let tm = TimeModel {
            cost: SgdUpdateCost::cumf(16),
            total_bandwidth: 1e9,
            epoch_overhead: 0.001,
        };
        let r = train::<f32>(&d.train, &d.test, &base_config(Scheme::Serial), Some(&tm));
        let pts = &r.trace.points;
        assert!(pts[0].seconds > 0.0);
        for w in pts.windows(2) {
            assert!(w[1].seconds > w[0].seconds);
        }
        // Serial: rounds = N+1, bytes = 12 + 4*16*2 = 140.
        let expected_epoch = 0.001 + (15_000.0 + 1.0) * 140.0 / 1e9;
        assert!((pts[0].seconds - expected_epoch).abs() / expected_epoch < 1e-6);
    }

    #[test]
    #[should_panic(expected = "training set is empty")]
    fn empty_training_set_rejected() {
        let d = small_dataset();
        let empty = CooMatrix::new(5, 5);
        let _ = train::<f32>(&empty, &d.test, &base_config(Scheme::Serial), None);
    }

    #[test]
    fn threaded_mode_override_converges() {
        // The engine seam in action: any scheme's samples executed by the
        // real-thread Hogwild! engine — previously a separate entry point.
        let d = small_dataset();
        let mut cfg = base_config(Scheme::BatchHogwild {
            workers: 4,
            batch: 64,
        });
        cfg.mode = Some(ExecMode::Threaded);
        let r = train::<f32>(&d.train, &d.test, &cfg, None);
        assert!(!r.diverged);
        assert!(r.trace.final_rmse().unwrap() < 0.25);
        assert_eq!(r.total_updates(), 15_000 * 15);
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted_run() {
        // Interrupt at epoch 5 of 15, resume, and the full trace must be
        // bit-identical to never having stopped.
        let d = small_dataset();
        let cfg = base_config(Scheme::BatchHogwild {
            workers: 8,
            batch: 64,
        });
        let full = train::<f32>(&d.train, &d.test, &cfg, None);

        let dir = std::env::temp_dir().join("cumf_solver_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.cmfk");
        let _ = std::fs::remove_file(&path);

        let mut first = cfg.clone();
        first.epochs = 5;
        let spec = CheckpointSpec {
            path: path.clone(),
            every: 5,
            resume: true,
        };
        let _ = train_resumable::<f32>(&d.train, &d.test, &first, None, Some(&spec)).unwrap();
        let resumed = train_resumable::<f32>(&d.train, &d.test, &cfg, None, Some(&spec)).unwrap();

        assert_eq!(resumed.trace.points.len(), full.trace.points.len());
        for (a, b) in resumed.trace.points.iter().zip(&full.trace.points) {
            assert_eq!(a.epoch, b.epoch);
            assert_eq!(a.updates, b.updates);
            assert_eq!(a.rmse.to_bits(), b.rmse.to_bits(), "epoch {}", a.epoch);
        }
        assert_eq!(resumed.p, full.p);
        assert_eq!(resumed.q, full.q);
        // Only the post-resume epochs were executed by the second call.
        assert_eq!(resumed.epoch_stats.len(), 10);
        let _ = std::fs::remove_file(&path);
    }
}
