//! The single-GPU cuMF_SGD training loop.
//!
//! Composes a scheduling policy ([`crate::sched`]), an execution engine
//! ([`crate::concurrent`]), a learning-rate schedule ([`crate::lrate`]) and
//! an optional machine-time model into per-epoch convergence traces — the
//! raw material of every RMSE-vs-time figure in the paper.

use cumf_rng::ChaCha8Rng;
use cumf_rng::SeedableRng;

use cumf_data::CooMatrix;
use cumf_gpu_sim::SgdUpdateCost;

use crate::concurrent::{run_epoch, EpochStats, ExecMode};
use crate::feature::{Element, FactorMatrix};
use crate::lrate::{LearningRate, Schedule};
use crate::metrics::{rmse, Trace, TracePoint};
use crate::sched::{
    BatchHogwildStream, HogwildStream, LibmfTableStream, SerialStream, UpdateStream,
    WavefrontStream,
};

/// Which scheduling policy the solver runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// One worker, storage order. The convergence reference.
    Serial,
    /// Plain Hogwild! with uniformly random picks.
    Hogwild {
        /// Parallel workers.
        workers: u32,
    },
    /// §5.1 batch-Hogwild! — the paper's single-GPU default.
    BatchHogwild {
        /// Parallel workers (thread blocks).
        workers: u32,
        /// Consecutive samples per grab (`f`, default 256).
        batch: u32,
    },
    /// §5.2 wavefront-update.
    Wavefront {
        /// Parallel workers (grid rows).
        workers: u32,
        /// Grid columns (≥ 2 × workers).
        cols: u32,
    },
    /// LIBMF's global-table blocking (the baseline policy).
    LibmfTable {
        /// Parallel workers (CPU threads).
        workers: u32,
        /// Grid dimension (a×a blocks).
        a: u32,
    },
}

impl Scheme {
    /// Number of parallel workers the scheme runs.
    pub fn workers(&self) -> u32 {
        match *self {
            Scheme::Serial => 1,
            Scheme::Hogwild { workers }
            | Scheme::BatchHogwild { workers, .. }
            | Scheme::Wavefront { workers, .. }
            | Scheme::LibmfTable { workers, .. } => workers,
        }
    }

    /// The execution semantics the scheme needs: lock-free policies race
    /// (stale-additive); blocking policies are conflict-free (sequential).
    pub fn default_mode(&self) -> ExecMode {
        match self {
            Scheme::Serial | Scheme::Wavefront { .. } | Scheme::LibmfTable { .. } => {
                ExecMode::Sequential
            }
            Scheme::Hogwild { .. } | Scheme::BatchHogwild { .. } => ExecMode::StaleAdditive,
        }
    }

    /// Policy name.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Serial => "serial",
            Scheme::Hogwild { .. } => "hogwild",
            Scheme::BatchHogwild { .. } => "batch-hogwild",
            Scheme::Wavefront { .. } => "wavefront",
            Scheme::LibmfTable { .. } => "libmf-table",
        }
    }
}

/// Solver configuration.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Feature dimension of the model.
    pub k: u32,
    /// Regularisation λ (shared by P and Q, as in the paper).
    pub lambda: f32,
    /// Learning-rate schedule.
    pub schedule: Schedule,
    /// Epochs (full passes) to run.
    pub epochs: u32,
    /// Scheduling policy.
    pub scheme: Scheme,
    /// Seed for initialisation and policy randomness.
    pub seed: u64,
    /// Execution-mode override (defaults to [`Scheme::default_mode`]).
    pub mode: Option<ExecMode>,
    /// Abort and flag divergence when test RMSE exceeds this ceiling.
    pub divergence_ceiling: f64,
}

impl SolverConfig {
    /// A sensible default configuration for a given scheme.
    pub fn new(k: u32, scheme: Scheme) -> Self {
        SolverConfig {
            k,
            lambda: 0.05,
            schedule: Schedule::paper_default(0.08, 0.3),
            epochs: 20,
            scheme,
            seed: 42,
            mode: None,
            divergence_ceiling: 1e3,
        }
    }
}

/// Converts epoch round counts into simulated seconds on a modelled
/// machine: one round = one update per worker at its fair bandwidth share.
#[derive(Debug, Clone)]
pub struct TimeModel {
    /// Per-update memory traffic model.
    pub cost: SgdUpdateCost,
    /// Total effective bandwidth of the worker ensemble, bytes/s.
    pub total_bandwidth: f64,
    /// Fixed per-epoch overhead (kernel launches, scheduling), seconds.
    pub epoch_overhead: f64,
}

impl TimeModel {
    /// Seconds one epoch takes given its observed round structure.
    pub fn epoch_seconds(&self, stats: &EpochStats, workers: u32) -> f64 {
        let per_round = self.cost.bytes() as f64 * workers as f64 / self.total_bandwidth;
        self.epoch_overhead + stats.rounds as f64 * per_round
    }
}

/// Compact end-of-run summary, also mirrored into the observability
/// registry (`cumf_solver_run_*` series) when [`train`] returns.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Scheduling policy name.
    pub scheme: &'static str,
    /// Epochs actually executed (early exit on divergence).
    pub epochs_run: u32,
    /// SGD updates applied across the run.
    pub total_updates: u64,
    /// Test RMSE after the last executed epoch (NaN when no epoch ran).
    pub final_rmse: f64,
    /// Host wall-clock seconds spent in the training loop.
    pub wall_seconds: f64,
    /// Simulated seconds, when a [`TimeModel`] was attached (else 0).
    pub sim_seconds: f64,
    /// Updates per wall-clock second (0 when no time elapsed).
    pub updates_per_wall_sec: f64,
    /// True if the run hit the divergence ceiling.
    pub diverged: bool,
}

impl TrainReport {
    /// Mirrors the snapshot into the global observability registry.
    fn publish(&self) {
        cumf_obs::counter("cumf_solver_runs_total", "Training runs completed").inc();
        cumf_obs::gauge(
            "cumf_solver_run_wall_seconds",
            "Wall-clock seconds of the most recent training run",
        )
        .set(self.wall_seconds);
        cumf_obs::gauge(
            "cumf_solver_run_sim_seconds",
            "Simulated seconds of the most recent training run",
        )
        .set(self.sim_seconds);
        cumf_obs::gauge(
            "cumf_solver_run_updates_per_sec",
            "Updates per wall-clock second of the most recent training run",
        )
        .set(self.updates_per_wall_sec);
        cumf_obs::gauge(
            "cumf_solver_run_final_rmse",
            "Final test RMSE of the most recent training run",
        )
        .set(self.final_rmse);
    }
}

/// Output of a training run.
#[derive(Debug, Clone)]
pub struct TrainResult<E: Element> {
    /// Learned row factors.
    pub p: FactorMatrix<E>,
    /// Learned column factors.
    pub q: FactorMatrix<E>,
    /// Per-epoch convergence trace.
    pub trace: Trace,
    /// Per-epoch execution statistics.
    pub epoch_stats: Vec<EpochStats>,
    /// End-of-run summary snapshot.
    pub report: TrainReport,
    /// True if training hit the divergence ceiling and stopped early.
    pub diverged: bool,
}

impl<E: Element> TrainResult<E> {
    /// Total updates across all executed epochs.
    pub fn total_updates(&self) -> u64 {
        self.epoch_stats.iter().map(|s| s.updates).sum()
    }
}

/// Trains a factorization of `train`, evaluating test RMSE after every
/// epoch. Generic over the storage element: `f32`, or `F16` for the
/// paper's half-precision mode.
pub fn train<E: Element>(
    train: &CooMatrix,
    test: &CooMatrix,
    config: &SolverConfig,
    time: Option<&TimeModel>,
) -> TrainResult<E> {
    assert!(config.k > 0, "k must be positive");
    assert!(!train.is_empty(), "training set is empty");
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut p: FactorMatrix<E> = FactorMatrix::random_init(train.rows(), config.k, &mut rng);
    let mut q: FactorMatrix<E> = FactorMatrix::random_init(train.cols(), config.k, &mut rng);

    let mut stream: Box<dyn UpdateStream> = match config.scheme {
        Scheme::Serial => Box::new(SerialStream::new(train.nnz())),
        Scheme::Hogwild { workers } => Box::new(HogwildStream::new(
            train.nnz(),
            workers as usize,
            config.seed ^ 0x5eed,
        )),
        Scheme::BatchHogwild { workers, batch } => Box::new(BatchHogwildStream::new(
            train.nnz(),
            workers as usize,
            batch as usize,
        )),
        Scheme::Wavefront { workers, cols } => Box::new(WavefrontStream::new(
            train,
            workers as usize,
            cols as usize,
            config.seed ^ 0x3afe,
        )),
        Scheme::LibmfTable { workers, a } => Box::new(LibmfTableStream::new(
            train,
            workers as usize,
            a as usize,
            config.seed ^ 0x71b,
        )),
    };

    let mode = config.mode.unwrap_or_else(|| config.scheme.default_mode());
    let mut lr = LearningRate::new(config.schedule.clone());
    let mut trace = Trace::default();
    let mut epoch_stats = Vec::with_capacity(config.epochs as usize);
    let mut seconds = 0.0f64;
    let mut updates = 0u64;
    let mut diverged = false;

    // Observability probes: registered once per run, updated lock-free in
    // the epoch loop (each probe is a no-op unless recording is enabled).
    let _run_span = cumf_obs::span("solver", format!("train:{}", config.scheme.name()));
    let obs_epochs = cumf_obs::counter("cumf_solver_epochs_total", "Training epochs executed");
    let obs_updates = cumf_obs::counter("cumf_solver_updates_total", "SGD updates applied");
    let obs_stalls = cumf_obs::counter(
        "cumf_solver_stalls_total",
        "Worker-round slots lost to scheduler stalls",
    );
    let obs_row_coll = cumf_obs::counter(
        "cumf_solver_row_collisions_total",
        "Rounds where two or more workers touched the same P row",
    );
    let obs_col_coll = cumf_obs::counter(
        "cumf_solver_col_collisions_total",
        "Rounds where two or more workers touched the same Q column",
    );
    let obs_rmse = cumf_obs::gauge("cumf_solver_rmse", "Test RMSE after the most recent epoch");
    let obs_gamma = cumf_obs::gauge(
        "cumf_solver_gamma",
        "Learning rate of the most recent epoch",
    );
    let obs_epoch_secs = cumf_obs::histogram(
        "cumf_solver_epoch_seconds",
        "Wall-clock seconds per training epoch (updates only, excluding evaluation)",
    );
    let obs_eval_secs = cumf_obs::histogram(
        "cumf_solver_rmse_eval_seconds",
        "Wall-clock seconds per test-RMSE evaluation",
    );
    let obs_sim_secs = cumf_obs::histogram(
        "cumf_solver_sim_epoch_seconds",
        "Simulated seconds per epoch under the attached machine-time model",
    );
    let run_t0 = std::time::Instant::now();

    for epoch in 0..config.epochs {
        let mut epoch_span = cumf_obs::span("solver", "epoch");
        let epoch_t0 = std::time::Instant::now();
        stream.begin_epoch(epoch);
        let gamma = lr.gamma(epoch);
        let stats = run_epoch(
            train,
            &mut p,
            &mut q,
            stream.as_mut(),
            gamma,
            config.lambda,
            mode,
        );
        obs_epoch_secs.record(epoch_t0.elapsed().as_secs_f64());
        updates += stats.updates;
        if let Some(tm) = time {
            let sim_epoch = tm.epoch_seconds(&stats, config.scheme.workers());
            obs_sim_secs.record(sim_epoch);
            seconds += sim_epoch;
        }
        let eval_span = cumf_obs::span("solver", "rmse_eval");
        let eval_t0 = std::time::Instant::now();
        let test_rmse = rmse(test, &p, &q);
        obs_eval_secs.record(eval_t0.elapsed().as_secs_f64());
        drop(eval_span);
        lr.observe(test_rmse);
        trace.push(TracePoint {
            epoch: epoch + 1,
            updates,
            rmse: test_rmse,
            seconds,
        });
        obs_epochs.inc();
        obs_updates.add(stats.updates);
        obs_stalls.add(stats.stalls);
        obs_row_coll.add(stats.row_collisions);
        obs_col_coll.add(stats.col_collisions);
        obs_rmse.set(test_rmse);
        obs_gamma.set(gamma as f64);
        epoch_span.set_arg("epoch", (epoch + 1) as f64);
        epoch_span.set_arg("updates", stats.updates as f64);
        epoch_span.set_arg("rounds", stats.rounds as f64);
        epoch_span.set_arg("rmse", test_rmse);
        epoch_span.set_arg("gamma", gamma as f64);
        epoch_stats.push(stats);
        if !test_rmse.is_finite() || test_rmse > config.divergence_ceiling {
            diverged = true;
            break;
        }
    }

    let wall_seconds = run_t0.elapsed().as_secs_f64();
    let report = TrainReport {
        scheme: config.scheme.name(),
        epochs_run: trace.points.len() as u32,
        total_updates: updates,
        final_rmse: trace.final_rmse().unwrap_or(f64::NAN),
        wall_seconds,
        sim_seconds: seconds,
        updates_per_wall_sec: if wall_seconds > 0.0 {
            updates as f64 / wall_seconds
        } else {
            0.0
        },
        diverged,
    };
    report.publish();

    TrainResult {
        p,
        q,
        trace,
        epoch_stats,
        report,
        diverged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::half::F16;
    use cumf_data::synth::{generate, SynthConfig};

    fn small_dataset() -> cumf_data::synth::SynthDataset {
        generate(&SynthConfig {
            m: 300,
            n: 200,
            k_true: 4,
            train_samples: 15_000,
            test_samples: 1_500,
            noise_std: 0.1,
            row_skew: 0.4,
            col_skew: 0.4,
            rating_offset: 1.0,
            seed: 11,
        })
    }

    fn base_config(scheme: Scheme) -> SolverConfig {
        SolverConfig {
            k: 6,
            lambda: 0.02,
            schedule: Schedule::paper_default(0.1, 0.1),
            epochs: 15,
            scheme,
            seed: 1,
            mode: None,
            divergence_ceiling: 1e3,
        }
    }

    #[test]
    fn serial_sgd_converges_towards_noise_floor() {
        let d = small_dataset();
        let r = train::<f32>(&d.train, &d.test, &base_config(Scheme::Serial), None);
        assert!(!r.diverged);
        let final_rmse = r.trace.final_rmse().unwrap();
        assert!(
            final_rmse < 0.2,
            "serial SGD should approach the 0.1 floor, got {final_rmse}"
        );
        // RMSE decreased substantially from epoch 1.
        assert!(r.trace.points[0].rmse > final_rmse);
        assert_eq!(r.total_updates(), 15_000 * 15);
    }

    #[test]
    fn batch_hogwild_matches_serial_convergence() {
        let d = small_dataset();
        let serial = train::<f32>(&d.train, &d.test, &base_config(Scheme::Serial), None);
        let bh = train::<f32>(
            &d.train,
            &d.test,
            &base_config(Scheme::BatchHogwild {
                workers: 8,
                batch: 64,
            }),
            None,
        );
        assert!(!bh.diverged);
        let s = serial.trace.final_rmse().unwrap();
        let b = bh.trace.final_rmse().unwrap();
        assert!(
            (b - s).abs() < 0.05,
            "batch-hogwild {b} should track serial {s} when s << min(m,n)"
        );
    }

    #[test]
    fn wavefront_converges() {
        let d = small_dataset();
        let r = train::<f32>(
            &d.train,
            &d.test,
            &base_config(Scheme::Wavefront {
                workers: 4,
                cols: 10,
            }),
            None,
        );
        assert!(!r.diverged);
        assert!(r.trace.final_rmse().unwrap() < 0.25);
        // Conflict-free: sequential mode used, so stalls are the only
        // parallel artefact.
        assert!(r.epoch_stats.iter().all(|s| s.updates == 15_000));
    }

    #[test]
    fn libmf_table_converges() {
        let d = small_dataset();
        let r = train::<f32>(
            &d.train,
            &d.test,
            &base_config(Scheme::LibmfTable { workers: 4, a: 10 }),
            None,
        );
        assert!(!r.diverged);
        assert!(r.trace.final_rmse().unwrap() < 0.25);
    }

    #[test]
    fn f16_storage_converges_like_f32() {
        // §4: half-precision storage "does not incur accuracy loss".
        let d = small_dataset();
        let cfg = base_config(Scheme::BatchHogwild {
            workers: 4,
            batch: 64,
        });
        let r32 = train::<f32>(&d.train, &d.test, &cfg, None);
        let r16 = train::<F16>(&d.train, &d.test, &cfg, None);
        let a = r32.trace.final_rmse().unwrap();
        let b = r16.trace.final_rmse().unwrap();
        assert!((a - b).abs() < 0.03, "f16 RMSE {b} must track f32 RMSE {a}");
    }

    #[test]
    fn massive_oversubscription_degrades_convergence() {
        // §7.5: convergence needs s << min(m, n). Crank s up to the matrix
        // dimension and conflicts must visibly hurt (slower convergence or
        // divergence) relative to the serial reference.
        let d = generate(&SynthConfig {
            m: 60,
            n: 40,
            k_true: 4,
            train_samples: 20_000,
            test_samples: 2_000,
            noise_std: 0.1,
            row_skew: 1.0,
            col_skew: 1.0,
            rating_offset: 0.0,
            seed: 12,
        });
        let mut cfg = base_config(Scheme::BatchHogwild {
            workers: 40,
            batch: 8,
        });
        cfg.schedule = Schedule::Fixed(0.5);
        let racy = train::<f32>(&d.train, &d.test, &cfg, None);
        let mut serial_cfg = base_config(Scheme::Serial);
        serial_cfg.schedule = Schedule::Fixed(0.5);
        let serial = train::<f32>(&d.train, &d.test, &serial_cfg, None);
        // A fully-diverged trace has no finite point (best_rmse = None).
        let serial_final = serial.trace.best_rmse().unwrap();
        let hurt = racy.diverged
            || racy
                .trace
                .best_rmse()
                .is_none_or(|best| best > serial_final * 1.05);
        assert!(
            hurt,
            "s=40 on a 60x40 matrix must hurt: racy {:?} vs serial {serial_final}",
            racy.trace.best_rmse()
        );
    }

    #[test]
    fn time_model_accumulates() {
        let d = small_dataset();
        let tm = TimeModel {
            cost: SgdUpdateCost::cumf(16),
            total_bandwidth: 1e9,
            epoch_overhead: 0.001,
        };
        let r = train::<f32>(&d.train, &d.test, &base_config(Scheme::Serial), Some(&tm));
        let pts = &r.trace.points;
        assert!(pts[0].seconds > 0.0);
        for w in pts.windows(2) {
            assert!(w[1].seconds > w[0].seconds);
        }
        // Serial: rounds = N+1, bytes = 12 + 4*16*2 = 140.
        let expected_epoch = 0.001 + (15_000.0 + 1.0) * 140.0 / 1e9;
        assert!((pts[0].seconds - expected_epoch).abs() / expected_epoch < 1e-6);
    }

    #[test]
    #[should_panic(expected = "training set is empty")]
    fn empty_training_set_rejected() {
        let d = small_dataset();
        let empty = CooMatrix::new(5, 5);
        let _ = train::<f32>(&empty, &d.test, &base_config(Scheme::Serial), None);
    }
}
