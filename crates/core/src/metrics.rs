//! Evaluation metrics: test RMSE (Eq. 2's objective) and Eq. 7 throughput.

use cumf_data::CooMatrix;

use crate::feature::{Element, FactorMatrix};
use crate::kernel::dot;

/// Root-mean-square error of `P·Q` against the samples of `data` — the
/// "Test RMSE" of every convergence figure in the paper.
pub fn rmse<E: Element>(data: &CooMatrix, p: &FactorMatrix<E>, q: &FactorMatrix<E>) -> f64 {
    assert_eq!(p.k(), q.k(), "P and Q must share k");
    if data.is_empty() {
        return 0.0;
    }
    let mut se = 0.0f64;
    for e in data.iter() {
        let pred = dot(p.row(e.u), q.row(e.v));
        let err = (e.r - pred) as f64;
        se += err * err;
    }
    (se / data.nnz() as f64).sqrt()
}

/// The paper's full training objective (Eq. 2): squared error plus L2
/// penalties over the *observed* samples.
pub fn regularised_loss<E: Element>(
    data: &CooMatrix,
    p: &FactorMatrix<E>,
    q: &FactorMatrix<E>,
    lambda: f32,
) -> f64 {
    let mut loss = 0.0f64;
    for e in data.iter() {
        let pu = p.row(e.u);
        let qv = q.row(e.v);
        let err = (e.r - dot(pu, qv)) as f64;
        let np: f64 = pu.iter().map(|x| (x.to_f32() as f64).powi(2)).sum();
        let nq: f64 = qv.iter().map(|x| (x.to_f32() as f64).powi(2)).sum();
        loss += err * err + lambda as f64 * (np + nq);
    }
    loss
}

/// Eq. 7: `#Updates/s = (#Iterations × N) / elapsed`.
///
/// Returns 0.0 when no time has elapsed (zero-length simulated runs hit
/// this) rather than dividing by zero.
pub fn updates_per_sec(iterations: u64, n_samples: u64, elapsed_secs: f64) -> f64 {
    if elapsed_secs <= 0.0 {
        return 0.0;
    }
    (iterations * n_samples) as f64 / elapsed_secs
}

/// One point of a convergence trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Epoch number (1-based: after this many full passes).
    pub epoch: u32,
    /// Cumulative SGD updates executed.
    pub updates: u64,
    /// Test RMSE after the epoch.
    pub rmse: f64,
    /// Simulated training time in seconds (0 when no time model attached).
    pub seconds: f64,
}

/// A convergence trace: RMSE after each epoch, plus helpers used by the
/// benchmark harness (time-to-target, final RMSE).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Per-epoch points, in epoch order.
    pub points: Vec<TracePoint>,
}

impl Trace {
    /// Appends a point; epochs must be recorded in order.
    pub fn push(&mut self, point: TracePoint) {
        if let Some(last) = self.points.last() {
            assert!(point.epoch > last.epoch, "epochs must increase");
        }
        self.points.push(point);
    }

    /// RMSE after the final epoch, or `None` when empty.
    pub fn final_rmse(&self) -> Option<f64> {
        self.points.last().map(|p| p.rmse)
    }

    /// Best (lowest) finite RMSE over the trace. Non-finite points (a
    /// diverged run's NaN tail) are skipped; `None` if nothing finite.
    pub fn best_rmse(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.rmse)
            .filter(|r| r.is_finite())
            .min_by(|a, b| a.partial_cmp(b).expect("finite values compare"))
    }

    /// First simulated time at which the trace reaches `target` RMSE —
    /// the "training time to converge" of Table 4.
    pub fn time_to_rmse(&self, target: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.rmse <= target)
            .map(|p| p.seconds)
    }

    /// First epoch at which the trace reaches `target` RMSE.
    pub fn epochs_to_rmse(&self, target: f64) -> Option<u32> {
        self.points
            .iter()
            .find(|p| p.rmse <= target)
            .map(|p| p.epoch)
    }

    /// True if the trace ever produced a non-finite or clearly diverged
    /// RMSE (> `ceiling`).
    pub fn diverged(&self, ceiling: f64) -> bool {
        self.points
            .iter()
            .any(|p| !p.rmse.is_finite() || p.rmse > ceiling)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_exact_model() -> (CooMatrix, FactorMatrix<f32>, FactorMatrix<f32>) {
        // P = [[1,0],[0,1]], Q = [[2,0],[0,3]] -> R = [[2,0],[0,3]].
        let p = FactorMatrix::from_f32_slice(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        let q = FactorMatrix::from_f32_slice(2, 2, &[2.0, 0.0, 0.0, 3.0]);
        let mut r = CooMatrix::new(2, 2);
        r.push(0, 0, 2.0);
        r.push(1, 1, 3.0);
        (r, p, q)
    }

    #[test]
    fn rmse_zero_for_exact_model() {
        let (r, p, q) = tiny_exact_model();
        assert_eq!(rmse(&r, &p, &q), 0.0);
    }

    #[test]
    fn rmse_of_constant_offset() {
        let (_, p, q) = tiny_exact_model();
        let mut r = CooMatrix::new(2, 2);
        r.push(0, 0, 3.0); // off by 1
        r.push(1, 1, 4.0); // off by 1
        assert!((rmse(&r, &p, &q) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rmse_empty_data_is_zero() {
        let (_, p, q) = tiny_exact_model();
        assert_eq!(rmse(&CooMatrix::new(2, 2), &p, &q), 0.0);
    }

    #[test]
    fn loss_includes_regularisation() {
        let (r, p, q) = tiny_exact_model();
        // Errors are zero; loss is purely λ (|p|² + |q|²) per sample.
        let loss = regularised_loss(&r, &p, &q, 0.5);
        // Sample (0,0): |p0|²=1, |q0|²=4 -> 0.5*5 = 2.5
        // Sample (1,1): |p1|²=1, |q1|²=9 -> 0.5*10 = 5.0
        assert!((loss - 7.5).abs() < 1e-9);
        assert_eq!(regularised_loss(&r, &p, &q, 0.0), 0.0);
    }

    #[test]
    fn eq7_updates_per_sec() {
        // 10 epochs of 1e6 samples in 2 seconds = 5 M updates/s.
        assert_eq!(updates_per_sec(10, 1_000_000, 2.0), 5e6);
    }

    #[test]
    fn eq7_zero_elapsed_is_zero_not_panic() {
        // Zero-length simulated runs produce elapsed == 0.
        assert_eq!(updates_per_sec(10, 1_000_000, 0.0), 0.0);
        assert_eq!(updates_per_sec(10, 1_000_000, -1.0), 0.0);
    }

    #[test]
    fn trace_queries() {
        let mut t = Trace::default();
        for (e, r, s) in [(1, 1.2, 0.1), (2, 0.95, 0.2), (3, 0.91, 0.3)] {
            t.push(TracePoint {
                epoch: e,
                updates: e as u64 * 100,
                rmse: r,
                seconds: s,
            });
        }
        assert_eq!(t.final_rmse(), Some(0.91));
        assert_eq!(t.best_rmse(), Some(0.91));
        assert_eq!(t.time_to_rmse(0.92), Some(0.3));
        assert_eq!(t.epochs_to_rmse(1.0), Some(2));
        assert_eq!(t.time_to_rmse(0.5), None);
        assert!(!t.diverged(10.0));
        assert!(t.diverged(1.0));
    }

    #[test]
    #[should_panic(expected = "epochs must increase")]
    fn trace_rejects_out_of_order() {
        let mut t = Trace::default();
        t.push(TracePoint {
            epoch: 2,
            updates: 0,
            rmse: 1.0,
            seconds: 0.0,
        });
        t.push(TracePoint {
            epoch: 1,
            updates: 0,
            rmse: 1.0,
            seconds: 0.0,
        });
    }
}
