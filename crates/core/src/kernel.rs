//! The SGD update kernel (Algorithm 1, lines 8–10).
//!
//! One update on sample `(u, v, r)`:
//!
//! ```text
//! err  = r - p_u · q_v
//! p_u += γ (err · q_v - λ p_u)
//! q_v += γ (err · p_u - λ q_v)        // using the OLD p_u
//! ```
//!
//! Two implementations: a plain scalar reference, and a 4-wide unrolled
//! variant mirroring the CUDA kernel's structure (each of the 32 lanes owns
//! `k/32` strided elements and the compiler is free to vectorise — the ILP
//! technique of §4). Tests pin them to agree bit-for-bit-ish.

use cumf_gpu_sim::{Precision, RatingAccess, SgdUpdateCost};

use crate::feature::Element;

/// The storage precision a factor [`Element`] type corresponds to in the
/// §2.3 cost model.
pub fn precision_of<E: Element>() -> Precision {
    match E::BYTES {
        2 => Precision::F16,
        4 => Precision::F32,
        other => panic!("no cost-model precision for {other}-byte elements"),
    }
}

/// The memory contract of [`sgd_update`]: which element accesses one
/// update performs, split into what reaches DRAM and what the GPU kernel
/// serves from registers.
///
/// The portable kernel converts each of `p_u`, `q_v` **twice** per update
/// — once in the dot product, once in the update loop — so it executes
/// `4k` element loads. On the GPU (and in the register-residency model of
/// the `cumf-analyze` kernel IR) the second read hits the registers that
/// staged the row on first load (Fig 4: "both CUDA and LIBMF stage the
/// old vectors in registers"), so only `2k` loads reach DRAM. The store
/// side writes each row back once: `2k` stores. This struct is *measured*
/// against the real kernel by the instrumented-element test below, and
/// certified against [`SgdUpdateCost`] by [`CostCert::certify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelTraffic {
    /// Feature dimension.
    pub k: u32,
    /// Bytes per stored element.
    pub elem_bytes: u32,
    /// Element loads the portable kernel executes (`4k`: dot + update).
    pub element_loads: u64,
    /// Element loads that reach DRAM after register staging (`2k`).
    pub dram_element_loads: u64,
    /// Element stores (`2k`: both rows written back once).
    pub element_stores: u64,
}

impl KernelTraffic {
    /// The contract of [`sgd_update`] for storage element `E` at dimension
    /// `k`, derived from the kernel's structure (and pinned to its real
    /// behaviour by the `instrumented_element_counts_match_contract` test).
    pub fn of_update_kernel<E: Element>(k: u32) -> Self {
        let k64 = k as u64;
        KernelTraffic {
            k,
            elem_bytes: E::BYTES as u32,
            element_loads: 4 * k64,
            dram_element_loads: 2 * k64,
            element_stores: 2 * k64,
        }
    }

    /// Bytes of the rating fetch, derived from the COO record the kernel
    /// consumes (two `u32` coordinates + one `f32` rating = 12 bytes),
    /// independent of the gpu-sim cost model it is checked against.
    pub fn rating_bytes(rating: RatingAccess) -> u64 {
        let coo = (2 * std::mem::size_of::<u32>() + std::mem::size_of::<f32>()) as u64;
        match rating {
            RatingAccess::Streamed => coo,
            RatingAccess::RandomLine { line_bytes } => (line_bytes as u64).max(coo),
        }
    }

    /// Total DRAM bytes per update under a rating access pattern.
    pub fn dram_bytes(&self, rating: RatingAccess) -> u64 {
        Self::rating_bytes(rating)
            + (self.dram_element_loads + self.element_stores) * self.elem_bytes as u64
    }

    /// Floating-point operations per update: the three `2`-flop/element
    /// vector stages (dot FMAs, `p` update, `q` update) plus the
    /// warp-shuffle reduction tree's halving sum — the numerator of Eq. 5.
    pub fn flops(&self) -> u64 {
        let k = self.k as u64;
        let mut reduction = 0;
        let mut i = k;
        while i > 1 {
            i /= 2;
            reduction += i;
        }
        6 * k + reduction
    }
}

/// Outcome of certifying the kernel contract against a cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostCertStatus {
    /// Kernel-derived traffic and the cost model agree bit-for-bit.
    Certified,
    /// They disagree; the concrete per-update delta is the evidence.
    Refuted {
        /// Bytes per update the cost model charges.
        model_bytes: u64,
        /// Bytes per update the kernel contract derives.
        kernel_bytes: u64,
        /// Flops per update the cost model counts.
        model_flops: u64,
        /// Flops per update the kernel contract counts.
        kernel_flops: u64,
    },
}

/// A per-run certificate that the Eq. 5 cost model matches the kernel the
/// run actually executed — the static-analysis counterpart of the
/// schedule [`crate::sched::ConflictCert`], attached to
/// [`crate::solver::TrainResult`] the same way.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostCert {
    /// Feature dimension certified.
    pub k: u32,
    /// Storage element name (`f32` / `f16`).
    pub precision: &'static str,
    /// Agreed bytes per update (kernel-derived; equals the model's when
    /// certified).
    pub bytes_per_update: u64,
    /// Agreed flops per update.
    pub flops_per_update: u64,
    /// Certification status.
    pub status: CostCertStatus,
    /// When the run priced epochs with a [`crate::solver::TimeModel`],
    /// the signed byte difference `time_model_bytes − kernel_bytes`;
    /// non-zero means the trace's clock charged different traffic than
    /// the kernel generates (informational — callers pass mismatched
    /// models deliberately in sensitivity studies).
    pub time_model_drift: Option<i64>,
    /// FNV-1a digest over the certified quantities, for logs and replay
    /// comparison.
    pub digest: u64,
}

impl CostCert {
    /// Certifies the [`sgd_update`] contract for element `E` at dimension
    /// `k` against the Eq. 5 cost model with the given rating access.
    /// `time_model` is the cost model of the run's time domain, if any.
    pub fn certify<E: Element>(
        k: u32,
        rating: RatingAccess,
        time_model: Option<&SgdUpdateCost>,
    ) -> CostCert {
        let traffic = KernelTraffic::of_update_kernel::<E>(k);
        let model = SgdUpdateCost {
            k,
            precision: precision_of::<E>(),
            rating_access: rating,
        };
        let kernel_bytes = traffic.dram_bytes(rating);
        let kernel_flops = traffic.flops();
        let status = if kernel_bytes == model.bytes() && kernel_flops == model.flops() {
            CostCertStatus::Certified
        } else {
            CostCertStatus::Refuted {
                model_bytes: model.bytes(),
                kernel_bytes,
                model_flops: model.flops(),
                kernel_flops,
            }
        };
        let time_model_drift = time_model.map(|tm| tm.bytes() as i64 - kernel_bytes as i64);
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(k as u64);
        mix(E::BYTES as u64);
        mix(kernel_bytes);
        mix(kernel_flops);
        mix(matches!(status, CostCertStatus::Certified) as u64);
        CostCert {
            k,
            precision: E::NAME,
            bytes_per_update: kernel_bytes,
            flops_per_update: kernel_flops,
            status,
            time_model_drift,
            digest: h,
        }
    }

    /// True when the kernel and the cost model agree.
    pub fn is_certified(&self) -> bool {
        matches!(self.status, CostCertStatus::Certified)
    }
}

impl std::fmt::Display for CostCert {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.status {
            CostCertStatus::Certified => write!(
                f,
                "cost certified: k={} {} — {} B/update, {} flops/update (digest {:016x})",
                self.k, self.precision, self.bytes_per_update, self.flops_per_update, self.digest
            )?,
            CostCertStatus::Refuted {
                model_bytes,
                kernel_bytes,
                model_flops,
                kernel_flops,
            } => write!(
                f,
                "cost REFUTED: k={} {} — model charges {model_bytes} B/update but the kernel \
                 touches {kernel_bytes} (Δ {:+}); flops {model_flops} vs {kernel_flops} (Δ {:+})",
                self.k,
                self.precision,
                model_bytes as i64 - kernel_bytes as i64,
                model_flops as i64 - kernel_flops as i64,
            )?,
        }
        if let Some(drift) = self.time_model_drift {
            if drift != 0 {
                write!(f, "; time-model drift {drift:+} B/update")?;
            }
        }
        Ok(())
    }
}

/// Dot product of two k-element rows in f32, scalar reference.
#[inline]
pub fn dot_scalar<E: Element>(p: &[E], q: &[E]) -> f32 {
    debug_assert_eq!(p.len(), q.len());
    let mut acc = 0.0f32;
    for (a, b) in p.iter().zip(q) {
        acc += a.to_f32() * b.to_f32();
    }
    acc
}

/// Dot product with 4 independent accumulators (ILP), matching the
/// warp-shuffle reduction's pairwise summation order more closely than a
/// single serial chain and letting LLVM vectorise.
#[inline]
pub fn dot<E: Element>(p: &[E], q: &[E]) -> f32 {
    debug_assert_eq!(p.len(), q.len());
    let mut acc = [0.0f32; 4];
    let chunks = p.len() / 4;
    for i in 0..chunks {
        let base = i * 4;
        for lane in 0..4 {
            acc[lane] += p[base + lane].to_f32() * q[base + lane].to_f32();
        }
    }
    let mut tail = 0.0f32;
    for i in chunks * 4..p.len() {
        tail += p[i].to_f32() * q[i].to_f32();
    }
    (acc[0] + acc[2]) + (acc[1] + acc[3]) + tail
}

/// One SGD update in place. Returns the prediction error *before* the
/// update (used for training-loss tracking).
///
/// `q` is updated with the *old* `p` exactly as in Algorithm 1 (line 10
/// uses `p_u` from before line 9's assignment — both CUDA and LIBMF stage
/// the old vectors in registers).
#[inline]
pub fn sgd_update<E: Element>(p: &mut [E], q: &mut [E], r: f32, gamma: f32, lambda: f32) -> f32 {
    debug_assert_eq!(p.len(), q.len());
    let err = r - dot(p, q);
    for i in 0..p.len() {
        let pi = p[i].to_f32();
        let qi = q[i].to_f32();
        p[i] = E::from_f32(pi + gamma * (err * qi - lambda * pi));
        q[i] = E::from_f32(qi + gamma * (err * pi - lambda * qi));
    }
    err
}

/// Scalar-reference version of [`sgd_update`] for differential testing.
#[inline]
pub fn sgd_update_reference<E: Element>(
    p: &mut [E],
    q: &mut [E],
    r: f32,
    gamma: f32,
    lambda: f32,
) -> f32 {
    let err = r - dot_scalar(p, q);
    for i in 0..p.len() {
        let pi = p[i].to_f32();
        let qi = q[i].to_f32();
        p[i] = E::from_f32(pi + gamma * (err * qi - lambda * pi));
        q[i] = E::from_f32(qi + gamma * (err * pi - lambda * qi));
    }
    err
}

/// Computes the SGD delta (new − old) against a read snapshot without
/// writing: the building block of the round-based Hogwild! conflict engine
/// ([`crate::concurrent`]), where stale reads and additive commits model
/// racing workers.
#[inline]
pub fn sgd_delta(
    p: &[f32],
    q: &[f32],
    r: f32,
    gamma: f32,
    lambda: f32,
    dp: &mut [f32],
    dq: &mut [f32],
) -> f32 {
    debug_assert_eq!(p.len(), q.len());
    let mut err = r;
    {
        let mut acc = 0.0f32;
        for (a, b) in p.iter().zip(q) {
            acc += a * b;
        }
        err -= acc;
    }
    for i in 0..p.len() {
        dp[i] = gamma * (err * q[i] - lambda * p[i]);
        dq[i] = gamma * (err * p[i] - lambda * q[i]);
    }
    err
}

/// Per-coordinate ADAGRAD state (the BIDMach update rule, and the paper's
/// stated future-work extension for cuMF_SGD).
#[derive(Debug, Clone)]
pub struct AdaGrad {
    /// Accumulated squared gradients, one per parameter.
    g2: Vec<f32>,
    /// Base learning rate.
    pub eta: f32,
    /// Numerical floor inside the square root.
    pub eps: f32,
}

impl AdaGrad {
    /// Creates state for `params` parameters.
    pub fn new(params: usize, eta: f32) -> Self {
        AdaGrad {
            g2: vec![0.0; params],
            eta,
            eps: 1e-8,
        }
    }

    /// The per-coordinate step size for gradient `g` at parameter `idx`,
    /// accumulating the squared gradient.
    #[inline]
    pub fn step(&mut self, idx: usize, g: f32) -> f32 {
        let acc = &mut self.g2[idx];
        *acc += g * g;
        self.eta / (acc.sqrt() + self.eps)
    }

    /// Number of tracked parameters.
    pub fn len(&self) -> usize {
        self.g2.len()
    }

    /// True if tracking zero parameters.
    pub fn is_empty(&self) -> bool {
        self.g2.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::half::F16;
    use cumf_rng::ChaCha8Rng;
    use cumf_rng::Rng;
    use cumf_rng::SeedableRng;

    fn random_vec(rng: &mut ChaCha8Rng, k: usize) -> Vec<f32> {
        (0..k).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn dot_matches_scalar() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for k in [1usize, 3, 4, 7, 16, 31, 32, 33, 64, 128] {
            let p = random_vec(&mut rng, k);
            let q = random_vec(&mut rng, k);
            let a = dot(&p[..], &q[..]);
            let b = dot_scalar(&p[..], &q[..]);
            assert!((a - b).abs() <= 1e-5 * (1.0 + b.abs()), "k={k}: {a} vs {b}");
        }
    }

    #[test]
    fn update_reduces_error_on_repeat() {
        // Repeated updates on the same sample drive the error to ~0.
        let mut p = [0.1f32; 8];
        let mut q = [0.1f32; 8];
        let mut last = f32::INFINITY;
        for _ in 0..200 {
            let err = sgd_update(&mut p[..], &mut q[..], 2.0, 0.1, 0.0).abs();
            assert!(err <= last + 1e-4, "error must not grow: {err} > {last}");
            last = err;
        }
        assert!(last < 1e-3, "final error {last}");
    }

    #[test]
    fn unrolled_matches_reference() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for k in [4usize, 16, 32, 64] {
            let p0 = random_vec(&mut rng, k);
            let q0 = random_vec(&mut rng, k);
            let (mut p1, mut q1) = (p0.clone(), q0.clone());
            let (mut p2, mut q2) = (p0, q0);
            let e1 = sgd_update(&mut p1[..], &mut q1[..], 1.5, 0.05, 0.02);
            let e2 = sgd_update_reference(&mut p2[..], &mut q2[..], 1.5, 0.05, 0.02);
            assert!((e1 - e2).abs() < 1e-5);
            for i in 0..k {
                assert!((p1[i] - p2[i]).abs() < 1e-6);
                assert!((q1[i] - q2[i]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn q_update_uses_old_p() {
        // Hand-computed 1-d case: p=2, q=3, r=10, gamma=0.1, lambda=0.
        // err = 10 - 6 = 4; p' = 2 + .1*4*3 = 3.2; q' = 3 + .1*4*2 = 3.8
        // (q' must use old p=2, not p'=3.2).
        let mut p = [2.0f32];
        let mut q = [3.0f32];
        let err = sgd_update(&mut p[..], &mut q[..], 10.0, 0.1, 0.0);
        assert_eq!(err, 4.0);
        assert!((p[0] - 3.2).abs() < 1e-6);
        assert!((q[0] - 3.8).abs() < 1e-6);
    }

    #[test]
    fn regularisation_shrinks_weights() {
        let mut p = [1.0f32];
        let mut q = [1.0f32];
        // r = p*q so err = 0; only the λ term acts.
        sgd_update(&mut p[..], &mut q[..], 1.0, 0.1, 0.5);
        assert!((p[0] - 0.95).abs() < 1e-6);
        assert!((q[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn delta_matches_update() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let k = 16;
        let p0 = random_vec(&mut rng, k);
        let q0 = random_vec(&mut rng, k);
        let mut dp = vec![0.0; k];
        let mut dq = vec![0.0; k];
        let e_delta = sgd_delta(&p0, &q0, 0.7, 0.05, 0.01, &mut dp, &mut dq);
        let (mut p1, mut q1) = (p0.clone(), q0.clone());
        let e_upd = sgd_update_reference(&mut p1[..], &mut q1[..], 0.7, 0.05, 0.01);
        assert!((e_delta - e_upd).abs() < 1e-6);
        for i in 0..k {
            assert!((p0[i] + dp[i] - p1[i]).abs() < 1e-6);
            assert!((q0[i] + dq[i] - q1[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn f16_update_tracks_f32_update() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let k = 32;
        let vals_p = random_vec(&mut rng, k);
        let vals_q = random_vec(&mut rng, k);
        let mut p32 = vals_p.clone();
        let mut q32 = vals_q.clone();
        let mut p16: Vec<F16> = vals_p.iter().map(|&x| F16::from_f32(x)).collect();
        let mut q16: Vec<F16> = vals_q.iter().map(|&x| F16::from_f32(x)).collect();
        for step in 0..50 {
            let r = 1.0 + 0.5 * (step as f32 * 0.3).sin();
            sgd_update(&mut p32[..], &mut q32[..], r, 0.05, 0.01);
            sgd_update(&mut p16[..], &mut q16[..], r, 0.05, 0.01);
        }
        for i in 0..k {
            let diff = (p32[i] - p16[i].to_f32()).abs();
            assert!(diff < 0.02, "lane {i}: f32 {} vs f16 {}", p32[i], p16[i]);
        }
    }

    /// An f32 stand-in whose conversions count themselves, so the
    /// [`KernelTraffic`] contract is *measured* against the real kernel
    /// rather than asserted.
    #[derive(Debug, Clone, Copy, Default, PartialEq)]
    struct CountingElem(f32);

    thread_local! {
        static ELEM_LOADS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
        static ELEM_STORES: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    }

    impl Element for CountingElem {
        const BYTES: usize = 4;
        const NAME: &'static str = "counting-f32";
        fn from_f32(x: f32) -> Self {
            ELEM_STORES.with(|c| c.set(c.get() + 1));
            CountingElem(x)
        }
        fn to_f32(self) -> f32 {
            ELEM_LOADS.with(|c| c.set(c.get() + 1));
            self.0
        }
    }

    #[test]
    fn instrumented_element_counts_match_contract() {
        for k in [1usize, 4, 16, 31, 64, 128] {
            let mut p: Vec<CountingElem> = (0..k).map(|i| CountingElem(0.01 * i as f32)).collect();
            let mut q: Vec<CountingElem> = (0..k).map(|i| CountingElem(0.02 * i as f32)).collect();
            ELEM_LOADS.with(|c| c.set(0));
            ELEM_STORES.with(|c| c.set(0));
            sgd_update(&mut p[..], &mut q[..], 1.0, 0.05, 0.01);
            let loads = ELEM_LOADS.with(|c| c.get());
            let stores = ELEM_STORES.with(|c| c.get());
            let contract = KernelTraffic::of_update_kernel::<CountingElem>(k as u32);
            assert_eq!(loads, contract.element_loads, "k={k} loads");
            assert_eq!(stores, contract.element_stores, "k={k} stores");
            // Register staging halves the loads that reach DRAM.
            assert_eq!(contract.dram_element_loads * 2, contract.element_loads);
        }
    }

    #[test]
    fn cost_cert_agrees_with_eq5_for_both_precisions() {
        use cumf_gpu_sim::RatingAccess;
        for k in [8u32, 16, 31, 64, 128] {
            let c32 = CostCert::certify::<f32>(k, RatingAccess::Streamed, None);
            let c16 = CostCert::certify::<F16>(k, RatingAccess::Streamed, None);
            assert!(c32.is_certified(), "{c32}");
            assert!(c16.is_certified(), "{c16}");
            assert_eq!(c32.bytes_per_update, 12 + 16 * k as u64);
            assert_eq!(c16.bytes_per_update, 12 + 8 * k as u64);
            assert_eq!(c32.flops_per_update, c16.flops_per_update);
            assert_ne!(c32.digest, c16.digest);
        }
        // Random-line rating fetches are certified under the same pattern.
        let rl = CostCert::certify::<f32>(16, RatingAccess::RandomLine { line_bytes: 128 }, None);
        assert!(rl.is_certified(), "{rl}");
        assert_eq!(rl.bytes_per_update, 128 + 16 * 16);
    }

    #[test]
    fn time_model_drift_is_reported() {
        use cumf_gpu_sim::RatingAccess;
        let matched = SgdUpdateCost::cpu_f32(16);
        let cert = CostCert::certify::<f32>(16, RatingAccess::Streamed, Some(&matched));
        assert_eq!(cert.time_model_drift, Some(0));
        // A k=128 time model on a k=16 run is a silent mispricing today;
        // the certificate surfaces it as a concrete byte delta.
        let mismatched = SgdUpdateCost::cpu_f32(128);
        let cert = CostCert::certify::<f32>(16, RatingAccess::Streamed, Some(&mismatched));
        assert_eq!(
            cert.time_model_drift,
            Some((12 + 16 * 128) - (12 + 16 * 16))
        );
        assert!(format!("{cert}").contains("time-model drift"));
    }

    #[test]
    fn adagrad_steps_shrink() {
        let mut ada = AdaGrad::new(4, 0.1);
        assert_eq!(ada.len(), 4);
        assert!(!ada.is_empty());
        let s1 = ada.step(0, 1.0);
        let s2 = ada.step(0, 1.0);
        let s3 = ada.step(0, 1.0);
        assert!(s1 > s2 && s2 > s3, "{s1} {s2} {s3}");
        // Untouched coordinate has full accumulated freshness.
        let other = ada.step(1, 1.0);
        assert!((other - s1).abs() < 1e-9);
    }
}
