//! The SGD update kernel (Algorithm 1, lines 8–10).
//!
//! One update on sample `(u, v, r)`:
//!
//! ```text
//! err  = r - p_u · q_v
//! p_u += γ (err · q_v - λ p_u)
//! q_v += γ (err · p_u - λ q_v)        // using the OLD p_u
//! ```
//!
//! Two implementations: a plain scalar reference, and a 4-wide unrolled
//! variant mirroring the CUDA kernel's structure (each of the 32 lanes owns
//! `k/32` strided elements and the compiler is free to vectorise — the ILP
//! technique of §4). Tests pin them to agree bit-for-bit-ish.

use crate::feature::Element;

/// Dot product of two k-element rows in f32, scalar reference.
#[inline]
pub fn dot_scalar<E: Element>(p: &[E], q: &[E]) -> f32 {
    debug_assert_eq!(p.len(), q.len());
    let mut acc = 0.0f32;
    for (a, b) in p.iter().zip(q) {
        acc += a.to_f32() * b.to_f32();
    }
    acc
}

/// Dot product with 4 independent accumulators (ILP), matching the
/// warp-shuffle reduction's pairwise summation order more closely than a
/// single serial chain and letting LLVM vectorise.
#[inline]
pub fn dot<E: Element>(p: &[E], q: &[E]) -> f32 {
    debug_assert_eq!(p.len(), q.len());
    let mut acc = [0.0f32; 4];
    let chunks = p.len() / 4;
    for i in 0..chunks {
        let base = i * 4;
        for lane in 0..4 {
            acc[lane] += p[base + lane].to_f32() * q[base + lane].to_f32();
        }
    }
    let mut tail = 0.0f32;
    for i in chunks * 4..p.len() {
        tail += p[i].to_f32() * q[i].to_f32();
    }
    (acc[0] + acc[2]) + (acc[1] + acc[3]) + tail
}

/// One SGD update in place. Returns the prediction error *before* the
/// update (used for training-loss tracking).
///
/// `q` is updated with the *old* `p` exactly as in Algorithm 1 (line 10
/// uses `p_u` from before line 9's assignment — both CUDA and LIBMF stage
/// the old vectors in registers).
#[inline]
pub fn sgd_update<E: Element>(p: &mut [E], q: &mut [E], r: f32, gamma: f32, lambda: f32) -> f32 {
    debug_assert_eq!(p.len(), q.len());
    let err = r - dot(p, q);
    for i in 0..p.len() {
        let pi = p[i].to_f32();
        let qi = q[i].to_f32();
        p[i] = E::from_f32(pi + gamma * (err * qi - lambda * pi));
        q[i] = E::from_f32(qi + gamma * (err * pi - lambda * qi));
    }
    err
}

/// Scalar-reference version of [`sgd_update`] for differential testing.
#[inline]
pub fn sgd_update_reference<E: Element>(
    p: &mut [E],
    q: &mut [E],
    r: f32,
    gamma: f32,
    lambda: f32,
) -> f32 {
    let err = r - dot_scalar(p, q);
    for i in 0..p.len() {
        let pi = p[i].to_f32();
        let qi = q[i].to_f32();
        p[i] = E::from_f32(pi + gamma * (err * qi - lambda * pi));
        q[i] = E::from_f32(qi + gamma * (err * pi - lambda * qi));
    }
    err
}

/// Computes the SGD delta (new − old) against a read snapshot without
/// writing: the building block of the round-based Hogwild! conflict engine
/// ([`crate::concurrent`]), where stale reads and additive commits model
/// racing workers.
#[inline]
pub fn sgd_delta(
    p: &[f32],
    q: &[f32],
    r: f32,
    gamma: f32,
    lambda: f32,
    dp: &mut [f32],
    dq: &mut [f32],
) -> f32 {
    debug_assert_eq!(p.len(), q.len());
    let mut err = r;
    {
        let mut acc = 0.0f32;
        for (a, b) in p.iter().zip(q) {
            acc += a * b;
        }
        err -= acc;
    }
    for i in 0..p.len() {
        dp[i] = gamma * (err * q[i] - lambda * p[i]);
        dq[i] = gamma * (err * p[i] - lambda * q[i]);
    }
    err
}

/// Per-coordinate ADAGRAD state (the BIDMach update rule, and the paper's
/// stated future-work extension for cuMF_SGD).
#[derive(Debug, Clone)]
pub struct AdaGrad {
    /// Accumulated squared gradients, one per parameter.
    g2: Vec<f32>,
    /// Base learning rate.
    pub eta: f32,
    /// Numerical floor inside the square root.
    pub eps: f32,
}

impl AdaGrad {
    /// Creates state for `params` parameters.
    pub fn new(params: usize, eta: f32) -> Self {
        AdaGrad {
            g2: vec![0.0; params],
            eta,
            eps: 1e-8,
        }
    }

    /// The per-coordinate step size for gradient `g` at parameter `idx`,
    /// accumulating the squared gradient.
    #[inline]
    pub fn step(&mut self, idx: usize, g: f32) -> f32 {
        let acc = &mut self.g2[idx];
        *acc += g * g;
        self.eta / (acc.sqrt() + self.eps)
    }

    /// Number of tracked parameters.
    pub fn len(&self) -> usize {
        self.g2.len()
    }

    /// True if tracking zero parameters.
    pub fn is_empty(&self) -> bool {
        self.g2.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::half::F16;
    use cumf_rng::ChaCha8Rng;
    use cumf_rng::Rng;
    use cumf_rng::SeedableRng;

    fn random_vec(rng: &mut ChaCha8Rng, k: usize) -> Vec<f32> {
        (0..k).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn dot_matches_scalar() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for k in [1usize, 3, 4, 7, 16, 31, 32, 33, 64, 128] {
            let p = random_vec(&mut rng, k);
            let q = random_vec(&mut rng, k);
            let a = dot(&p[..], &q[..]);
            let b = dot_scalar(&p[..], &q[..]);
            assert!((a - b).abs() <= 1e-5 * (1.0 + b.abs()), "k={k}: {a} vs {b}");
        }
    }

    #[test]
    fn update_reduces_error_on_repeat() {
        // Repeated updates on the same sample drive the error to ~0.
        let mut p = [0.1f32; 8];
        let mut q = [0.1f32; 8];
        let mut last = f32::INFINITY;
        for _ in 0..200 {
            let err = sgd_update(&mut p[..], &mut q[..], 2.0, 0.1, 0.0).abs();
            assert!(err <= last + 1e-4, "error must not grow: {err} > {last}");
            last = err;
        }
        assert!(last < 1e-3, "final error {last}");
    }

    #[test]
    fn unrolled_matches_reference() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for k in [4usize, 16, 32, 64] {
            let p0 = random_vec(&mut rng, k);
            let q0 = random_vec(&mut rng, k);
            let (mut p1, mut q1) = (p0.clone(), q0.clone());
            let (mut p2, mut q2) = (p0, q0);
            let e1 = sgd_update(&mut p1[..], &mut q1[..], 1.5, 0.05, 0.02);
            let e2 = sgd_update_reference(&mut p2[..], &mut q2[..], 1.5, 0.05, 0.02);
            assert!((e1 - e2).abs() < 1e-5);
            for i in 0..k {
                assert!((p1[i] - p2[i]).abs() < 1e-6);
                assert!((q1[i] - q2[i]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn q_update_uses_old_p() {
        // Hand-computed 1-d case: p=2, q=3, r=10, gamma=0.1, lambda=0.
        // err = 10 - 6 = 4; p' = 2 + .1*4*3 = 3.2; q' = 3 + .1*4*2 = 3.8
        // (q' must use old p=2, not p'=3.2).
        let mut p = [2.0f32];
        let mut q = [3.0f32];
        let err = sgd_update(&mut p[..], &mut q[..], 10.0, 0.1, 0.0);
        assert_eq!(err, 4.0);
        assert!((p[0] - 3.2).abs() < 1e-6);
        assert!((q[0] - 3.8).abs() < 1e-6);
    }

    #[test]
    fn regularisation_shrinks_weights() {
        let mut p = [1.0f32];
        let mut q = [1.0f32];
        // r = p*q so err = 0; only the λ term acts.
        sgd_update(&mut p[..], &mut q[..], 1.0, 0.1, 0.5);
        assert!((p[0] - 0.95).abs() < 1e-6);
        assert!((q[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn delta_matches_update() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let k = 16;
        let p0 = random_vec(&mut rng, k);
        let q0 = random_vec(&mut rng, k);
        let mut dp = vec![0.0; k];
        let mut dq = vec![0.0; k];
        let e_delta = sgd_delta(&p0, &q0, 0.7, 0.05, 0.01, &mut dp, &mut dq);
        let (mut p1, mut q1) = (p0.clone(), q0.clone());
        let e_upd = sgd_update_reference(&mut p1[..], &mut q1[..], 0.7, 0.05, 0.01);
        assert!((e_delta - e_upd).abs() < 1e-6);
        for i in 0..k {
            assert!((p0[i] + dp[i] - p1[i]).abs() < 1e-6);
            assert!((q0[i] + dq[i] - q1[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn f16_update_tracks_f32_update() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let k = 32;
        let vals_p = random_vec(&mut rng, k);
        let vals_q = random_vec(&mut rng, k);
        let mut p32 = vals_p.clone();
        let mut q32 = vals_q.clone();
        let mut p16: Vec<F16> = vals_p.iter().map(|&x| F16::from_f32(x)).collect();
        let mut q16: Vec<F16> = vals_q.iter().map(|&x| F16::from_f32(x)).collect();
        for step in 0..50 {
            let r = 1.0 + 0.5 * (step as f32 * 0.3).sin();
            sgd_update(&mut p32[..], &mut q32[..], r, 0.05, 0.01);
            sgd_update(&mut p16[..], &mut q16[..], r, 0.05, 0.01);
        }
        for i in 0..k {
            let diff = (p32[i] - p16[i].to_f32()).abs();
            assert!(diff < 0.02, "lane {i}: f32 {} vs f16 {}", p32[i], p16[i]);
        }
    }

    #[test]
    fn adagrad_steps_shrink() {
        let mut ada = AdaGrad::new(4, 0.1);
        assert_eq!(ada.len(), 4);
        assert!(!ada.is_empty());
        let s1 = ada.step(0, 1.0);
        let s2 = ada.step(0, 1.0);
        let s3 = ada.step(0, 1.0);
        assert!(s1 > s2 && s2 > s3, "{s1} {s2} {s3}");
        // Untouched coordinate has full accumulated freshness.
        let other = ada.step(1, 1.0);
        assert!((other - s1).abs() < 1e-9);
    }
}
