//! IEEE 754 binary16 ("half precision"), implemented from scratch.
//!
//! §4 of the paper: *"CuMF_SGD uses half-precision to store feature
//! matrices, which halves the memory bandwidth need"*. On GPUs the
//! conversion is a hardware instruction; here we implement the conversion
//! pair in software with round-to-nearest-even, the same rounding CUDA's
//! `__float2half_rn` performs.
//!
//! Only storage conversions are needed — all arithmetic happens in f32,
//! exactly as in the CUDA kernel (loads widen to f32 registers, stores
//! narrow back).

/// An IEEE 754 binary16 value: 1 sign bit, 5 exponent bits, 10 mantissa
/// bits. Range ±65504, ~3 decimal digits of precision.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// The largest finite value, 65504.
    pub const MAX: F16 = F16(0x7BFF);
    /// The smallest positive normal value, 2⁻¹⁴.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);

    /// Creates from the raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// The raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from f32 with round-to-nearest-even.
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mant = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf / NaN. Preserve NaN-ness with a quiet-NaN payload bit.
            return if mant == 0 {
                F16(sign | 0x7C00)
            } else {
                F16(sign | 0x7E00)
            };
        }

        // Unbiased exponent; f32 bias 127, f16 bias 15.
        let unbiased = exp - 127;
        if unbiased > 15 {
            // Overflow -> infinity.
            return F16(sign | 0x7C00);
        }
        if unbiased >= -14 {
            // Normal range: drop 13 mantissa bits with RNE.
            let mant16 = (mant >> 13) as u16;
            let half_exp = ((unbiased + 15) as u16) << 10;
            let rest = mant & 0x1FFF;
            let mut out = sign | half_exp | mant16;
            // Round: up if remainder > half, or exactly half and LSB set.
            if rest > 0x1000 || (rest == 0x1000 && (mant16 & 1) == 1) {
                out += 1; // Carries correctly into the exponent on overflow.
            }
            return F16(out);
        }
        if unbiased >= -25 {
            // Subnormal f16: the target is mant16 = round(value / 2^-24)
            // = round(full_mant * 2^(unbiased+1)), i.e. a right shift of
            // the 24-bit significand by (-unbiased - 1) ∈ 14..=24.
            // unbiased == -25 is included: mant16 shifts to 0, but a
            // value strictly above 2^-25 (rest > half) must round up to
            // the smallest subnormal, not flush to zero; exactly 2^-25
            // ties to the even pattern 0x0000.
            let full_mant = mant | 0x0080_0000;
            let shift = (-1 - unbiased) as u32;
            let mant16 = (full_mant >> shift) as u16;
            let rest = full_mant & ((1u32 << shift) - 1);
            let half = 1u32 << (shift - 1);
            let mut out = sign | mant16;
            if rest > half || (rest == half && (mant16 & 1) == 1) {
                out += 1;
            }
            return F16(out);
        }
        // Underflow to (signed) zero.
        F16(sign)
    }

    /// Converts to f32 exactly (every f16 value is representable in f32).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> 10) & 0x1F) as u32;
        let mant = (self.0 & 0x03FF) as u32;
        let bits = match (exp, mant) {
            (0, 0) => sign, // signed zero
            (0, m) => {
                // Subnormal: renormalise. Zeros before the leading one
                // within the 10-bit field = u32 leading zeros - 22.
                let lz = m.leading_zeros() - 22;
                let shifted = m << (lz + 1); // leading one lands at bit 10
                let exp32 = 127 - 15 - lz; // = 112 - field_lz
                sign | (exp32 << 23) | ((shifted & 0x03FF) << 13)
            }
            (0x1F, 0) => sign | 0x7F80_0000,             // infinity
            (0x1F, m) => sign | 0x7F80_0000 | (m << 13), // NaN
            (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
        };
        f32::from_bits(bits)
    }

    /// True if this value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// True if this value is ±∞.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// True if the value is neither NaN nor infinite.
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }
}

impl From<f32> for F16 {
    fn from(x: f32) -> Self {
        F16::from_f32(x)
    }
}

impl From<F16> for f32 {
    fn from(x: F16) -> Self {
        x.to_f32()
    }
}

impl std::fmt::Display for F16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Maximum relative quantisation error of a round trip through f16 for
/// values in the normal range: half an ulp = 2⁻¹¹.
pub const F16_MAX_RELATIVE_ERROR: f32 = 1.0 / 2048.0;

/// The largest finite binary16 magnitude, as f32: any stored value with
/// `|x| > 65504 + 16` (the rounding boundary is 65520) overflows to ±∞.
/// The FP16 range-analysis pass proves stored intermediates stay below
/// this.
pub const F16_MAX_F32: f32 = 65504.0;

/// The smallest positive *normal* binary16 value (2⁻¹⁴) as f32; below it
/// precision degrades gradually through the subnormal range.
pub const F16_MIN_POSITIVE_NORMAL_F32: f32 = 6.103_515_6e-5;

/// The smallest positive subnormal binary16 value (2⁻²⁴) as f32; stores
/// with magnitude under half of it flush to zero — the floor under which
/// SGD updates silently stagnate in half precision.
pub const F16_MIN_POSITIVE_SUBNORMAL_F32: f32 = 5.960_464_5e-8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_round_trip() {
        for i in -2048..=2048 {
            let x = i as f32;
            assert_eq!(F16::from_f32(x).to_f32(), x, "integer {i}");
        }
    }

    #[test]
    fn known_bit_patterns() {
        assert_eq!(F16::from_f32(1.0).to_bits(), 0x3C00);
        assert_eq!(F16::from_f32(-2.0).to_bits(), 0xC000);
        assert_eq!(F16::from_f32(0.5).to_bits(), 0x3800);
        assert_eq!(F16::from_f32(65504.0).to_bits(), 0x7BFF);
        assert_eq!(F16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(F16::from_f32(-0.0).to_bits(), 0x8000);
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert!(F16::from_f32(1e6).is_infinite());
        assert!(F16::from_f32(-1e6).is_infinite());
        assert_eq!(F16::from_f32(f32::INFINITY), F16::INFINITY);
        assert_eq!(F16::from_f32(f32::NEG_INFINITY), F16::NEG_INFINITY);
        // 65520 rounds to inf (midpoint rounds to even = inf),
        // 65519 rounds down to MAX.
        assert!(F16::from_f32(65520.0).is_infinite());
        assert_eq!(F16::from_f32(65519.0), F16::MAX);
    }

    #[test]
    fn nan_propagates() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
        assert!(!F16::from_f32(1.0).is_nan());
    }

    #[test]
    fn subnormals() {
        // Smallest positive subnormal: 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(F16::from_f32(tiny).to_bits(), 0x0001);
        assert_eq!(F16::from_bits(0x0001).to_f32(), tiny);
        // Largest subnormal: (1023/1024) * 2^-14.
        let big_sub = (1023.0 / 1024.0) * 2.0f32.powi(-14);
        assert_eq!(F16::from_f32(big_sub).to_bits(), 0x03FF);
        assert_eq!(F16::from_bits(0x03FF).to_f32(), big_sub);
        // Below half the smallest subnormal underflows to zero.
        assert_eq!(F16::from_f32(2.0f32.powi(-26)), F16::ZERO);
        // MIN_POSITIVE normal round trips.
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 2.0f32.powi(-14));
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16
        // (1 + 2^-10); RNE keeps the even mantissa -> 1.0.
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(halfway).to_bits(), 0x3C00);
        // 1 + 3*2^-11 is halfway between (1+2^-10) and (1+2^-9); RNE picks
        // the even mantissa (1+2^-9, bits ...10).
        let halfway2 = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(halfway2).to_bits(), 0x3C02);
        // Just above halfway rounds up.
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(F16::from_f32(above).to_bits(), 0x3C01);
    }

    #[test]
    fn relative_error_bound_on_normal_range() {
        // Sweep pseudo-random values across the normal f16 range and check
        // the round-trip error bound.
        let mut x = 0.000_061_5f32; // just above min normal
        while x < 60000.0 {
            for sign in [1.0f32, -1.0] {
                let v = x * sign;
                let rt = F16::from_f32(v).to_f32();
                let rel = ((rt - v) / v).abs();
                assert!(
                    rel <= F16_MAX_RELATIVE_ERROR,
                    "x = {v}, round trip {rt}, rel err {rel}"
                );
            }
            x *= 1.37;
        }
    }

    #[test]
    fn all_f16_bit_patterns_round_trip_exactly() {
        // f16 -> f32 -> f16 must be the identity for every finite pattern.
        for bits in 0..=0xFFFFu16 {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                assert!(F16::from_f32(h.to_f32()).is_nan());
                continue;
            }
            let rt = F16::from_f32(h.to_f32());
            assert_eq!(rt.to_bits(), bits, "bits {bits:#06x}");
        }
    }

    #[test]
    fn range_constants_match_bit_patterns() {
        assert_eq!(F16::MAX.to_f32(), F16_MAX_F32);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), F16_MIN_POSITIVE_NORMAL_F32);
        assert_eq!(
            F16::from_bits(0x0001).to_f32(),
            F16_MIN_POSITIVE_SUBNORMAL_F32
        );
        assert_eq!(F16_MIN_POSITIVE_NORMAL_F32, 2.0f32.powi(-14));
        assert_eq!(F16_MIN_POSITIVE_SUBNORMAL_F32, 2.0f32.powi(-24));
    }

    #[test]
    fn feature_scale_values_are_well_represented() {
        // Feature values live in roughly [-2, 2] after the paper's
        // "parameter scaling"; quantisation there is harmless.
        for i in 0..1000 {
            let x = -2.0 + 4.0 * (i as f32) / 999.0;
            let rt = F16::from_f32(x).to_f32();
            assert!((rt - x).abs() <= 2.0 * F16_MAX_RELATIVE_ERROR * x.abs().max(0.25));
        }
    }
}
