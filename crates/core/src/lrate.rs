//! Learning-rate schedules.
//!
//! The paper (§7.1) adopts NOMAD's decay schedule (its Eq. 9):
//!
//! ```text
//! γ_t = α / (1 + β · t^1.5)
//! ```
//!
//! LIBMF instead uses a *bold-driver*-style adaptive rule (Chin et al.,
//! "A learning-rate schedule for stochastic gradient methods to matrix
//! factorization"); we provide both, plus a fixed rate for testing.

/// A per-epoch learning-rate schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum Schedule {
    /// Constant learning rate.
    Fixed(f32),
    /// The paper's Eq. 9: `γ_t = α / (1 + β t^1.5)` with epoch `t`
    /// counted from 0.
    NomadDecay {
        /// Initial rate α.
        alpha: f32,
        /// Decay strength β.
        beta: f32,
    },
    /// Bold driver: multiply by `up` after an epoch that improved the
    /// monitored loss, by `down` after one that worsened it.
    BoldDriver {
        /// Initial rate.
        initial: f32,
        /// Multiplier on improvement (e.g. 1.05).
        up: f32,
        /// Multiplier on regression (e.g. 0.5).
        down: f32,
    },
}

impl Schedule {
    /// The paper's per-dataset default (Table 3): `NomadDecay`.
    pub fn paper_default(alpha: f32, beta: f32) -> Self {
        Schedule::NomadDecay { alpha, beta }
    }
}

/// Checkpointable adaptive state of a [`LearningRate`] evaluator. Decay
/// schedules are stateless in the epoch index; only `BoldDriver`'s current
/// rate and last observed loss need persisting across a resume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LrState {
    /// Current rate (meaningful for adaptive schedules).
    pub current: f32,
    /// Loss observed after the most recent epoch, if any.
    pub last_loss: Option<f64>,
}

/// Stateful evaluator of a [`Schedule`].
#[derive(Debug, Clone)]
pub struct LearningRate {
    schedule: Schedule,
    current: f32,
    last_loss: Option<f64>,
}

impl LearningRate {
    /// Creates the evaluator; `gamma(0)` is the initial rate.
    pub fn new(schedule: Schedule) -> Self {
        let current = match schedule {
            Schedule::Fixed(g) => g,
            Schedule::NomadDecay { alpha, .. } => alpha,
            Schedule::BoldDriver { initial, .. } => initial,
        };
        LearningRate {
            schedule,
            current,
            last_loss: None,
        }
    }

    /// Learning rate for epoch `t` (0-based). For `BoldDriver`, feed epoch
    /// losses through [`Self::observe`] between epochs.
    pub fn gamma(&self, t: u32) -> f32 {
        match self.schedule {
            Schedule::Fixed(g) => g,
            Schedule::NomadDecay { alpha, beta } => alpha / (1.0 + beta * (t as f32).powf(1.5)),
            Schedule::BoldDriver { .. } => self.current,
        }
    }

    /// Snapshot of the adaptive state (for checkpointing).
    pub fn state(&self) -> LrState {
        LrState {
            current: self.current,
            last_loss: self.last_loss,
        }
    }

    /// Restores a snapshot taken by [`Self::state`] (the schedule itself is
    /// reconstructed from configuration, not checkpointed).
    pub fn restore(&mut self, state: LrState) {
        self.current = state.current;
        self.last_loss = state.last_loss;
    }

    /// Reports the monitored loss after an epoch (drives `BoldDriver`).
    pub fn observe(&mut self, loss: f64) {
        if let Schedule::BoldDriver { up, down, .. } = self.schedule {
            if let Some(prev) = self.last_loss {
                if loss < prev {
                    self.current *= up;
                } else {
                    self.current *= down;
                }
            }
            self.last_loss = Some(loss);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_fixed() {
        let lr = LearningRate::new(Schedule::Fixed(0.05));
        assert_eq!(lr.gamma(0), 0.05);
        assert_eq!(lr.gamma(100), 0.05);
    }

    #[test]
    fn nomad_decay_matches_eq9() {
        // Netflix parameters (Table 3): alpha = 0.08, beta = 0.3.
        let lr = LearningRate::new(Schedule::paper_default(0.08, 0.3));
        assert_eq!(lr.gamma(0), 0.08);
        let g1 = lr.gamma(1);
        assert!((g1 - 0.08 / 1.3).abs() < 1e-7);
        let g4 = lr.gamma(4);
        assert!((g4 - 0.08 / (1.0 + 0.3 * 8.0)).abs() < 1e-7);
        // Strictly decreasing.
        let mut prev = f32::INFINITY;
        for t in 0..50 {
            let g = lr.gamma(t);
            assert!(g < prev);
            prev = g;
        }
    }

    #[test]
    fn bold_driver_adapts() {
        let mut lr = LearningRate::new(Schedule::BoldDriver {
            initial: 0.1,
            up: 1.05,
            down: 0.5,
        });
        assert_eq!(lr.gamma(0), 0.1);
        lr.observe(1.0); // first observation: no change
        assert_eq!(lr.gamma(1), 0.1);
        lr.observe(0.9); // improved
        assert!((lr.gamma(2) - 0.105).abs() < 1e-7);
        lr.observe(1.5); // regressed
        assert!((lr.gamma(3) - 0.0525).abs() < 1e-7);
    }

    #[test]
    fn observe_is_noop_for_decay() {
        let mut lr = LearningRate::new(Schedule::paper_default(0.08, 0.3));
        let before = lr.gamma(3);
        lr.observe(10.0);
        lr.observe(0.1);
        assert_eq!(lr.gamma(3), before);
    }
}
