//! Eraser-style dynamic lockset race sanitizer (feature `sanitize`).
//!
//! Implements the candidate-lockset algorithm of Savage et al.'s *Eraser*
//! (SOSP'97), simplified to this crate's needs: every monitored memory
//! location (a factor **row** of a [`crate::concurrent::StripedFactors`]
//! or [`crate::concurrent::AtomicFactors`] instance) carries a candidate
//! set `C(v)` of locks believed to protect it.
//!
//! * The first accessing thread leaves the location *exclusive* — no
//!   lockset is kept while a single thread owns it (initialisation).
//! * When a second thread touches the location it becomes *shared* and
//!   `C(v)` is initialised to the locks that thread holds.
//! * Every later access refines `C(v) ← C(v) ∩ locks_held(t)`.
//! * `C(v) = ∅` means no single lock protected every access — a data race
//!   candidate; one [`RaceReport`] is emitted per location.
//!
//! The striped executor acquires the stripe covering each row before
//! touching it, so every row's lockset stabilises at its stripe — zero
//! reports. The lock-free Hogwild! executor holds nothing, so the first
//! cross-thread access empties the lockset — which is precisely the
//! by-design race the paper's §5.1 argues convergence tolerates. The
//! sanitizer turns both statements into observed facts.
//!
//! Instrumentation is compiled in only under the `sanitize` feature and is
//! additionally gated at runtime by [`set_enabled`] so unrelated code
//! sharing the process (e.g. other tests) records nothing.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Identifies one lock (a stripe of one instance) process-wide.
pub type LockId = u64;

/// Identifies one monitored location: `(instance id, row)`.
pub type Location = (u64, u32);

/// Read or write access, for reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// The access only read the row.
    Read,
    /// The access (possibly) wrote the row.
    Write,
}

/// One location whose candidate lockset went empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// Instrumentation site (`"striped"` or `"atomic"`).
    pub site: &'static str,
    /// The racy location `(instance id, row)`.
    pub location: Location,
    /// Kind of the access that emptied the lockset.
    pub kind: AccessKind,
    /// Sanitizer-local id of the thread that emptied the lockset.
    pub thread: u64,
}

impl std::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "lockset empty: {} instance {} row {} ({:?} by thread {})",
            self.site, self.location.0, self.location.1, self.kind, self.thread
        )
    }
}

/// Eraser location state machine (simplified: the read-shared refinement
/// is folded into `Shared`; reads and writes both refine the lockset).
#[derive(Debug)]
enum LocState {
    /// Only one thread has touched the location so far.
    Exclusive(u64),
    /// Multiple threads; candidate lockset (sorted, deduped).
    Shared(Vec<LockId>),
    /// Lockset went empty; already reported.
    Racy,
}

#[derive(Default)]
struct SanitizerState {
    locations: HashMap<Location, LocState>,
    reports: Vec<RaceReport>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

fn state() -> &'static Mutex<SanitizerState> {
    static STATE: std::sync::LazyLock<Mutex<SanitizerState>> =
        std::sync::LazyLock::new(|| Mutex::new(SanitizerState::default()));
    &STATE
}

thread_local! {
    static HELD: RefCell<Vec<LockId>> = const { RefCell::new(Vec::new()) };
    static TID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

/// Turns recording on or off. Enabling clears all prior location state and
/// reports so each analysis run starts fresh.
pub fn set_enabled(on: bool) {
    if on {
        let mut st = state().lock().unwrap();
        st.locations.clear();
        st.reports.clear();
    }
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether the sanitizer is currently recording.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Allocates a fresh instance id for a monitored factor store.
pub fn new_instance() -> u64 {
    NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed)
}

/// RAII token: the calling thread holds `lock` until the token drops.
#[must_use = "the lock is only considered held while the token lives"]
pub struct HeldLock(LockId);

impl Drop for HeldLock {
    fn drop(&mut self) {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(pos) = h.iter().rposition(|&l| l == self.0) {
                h.remove(pos);
            }
        });
    }
}

/// Records that the calling thread acquired `lock`; release by dropping.
pub fn hold(lock: LockId) -> HeldLock {
    HELD.with(|h| h.borrow_mut().push(lock));
    HeldLock(lock)
}

/// The Eraser transition for one access to `location` from the calling
/// thread with its currently held locks.
pub fn on_access(site: &'static str, location: Location, kind: AccessKind) {
    if !enabled() {
        return;
    }
    let tid = TID.with(|t| *t);
    let held: Vec<LockId> = HELD.with(|h| {
        let mut v = h.borrow().clone();
        v.sort_unstable();
        v.dedup();
        v
    });
    let mut st = state().lock().unwrap();
    let entry = st
        .locations
        .entry(location)
        .or_insert(LocState::Exclusive(tid));
    let report = match entry {
        LocState::Exclusive(owner) if *owner == tid => false,
        LocState::Exclusive(_) => {
            // Second thread: the location becomes shared with this
            // thread's lockset as the initial candidate set.
            if held.is_empty() {
                *entry = LocState::Racy;
                true
            } else {
                *entry = LocState::Shared(held);
                false
            }
        }
        LocState::Shared(lockset) => {
            lockset.retain(|l| held.binary_search(l).is_ok());
            if lockset.is_empty() {
                *entry = LocState::Racy;
                true
            } else {
                false
            }
        }
        LocState::Racy => false,
    };
    if report {
        st.reports.push(RaceReport {
            site,
            location,
            kind,
            thread: tid,
        });
    }
}

/// Drains and returns all reports collected since the last enable/drain.
pub fn take_reports() -> Vec<RaceReport> {
    std::mem::take(&mut state().lock().unwrap().reports)
}

/// Number of undrained reports.
pub fn race_count() -> usize {
    state().lock().unwrap().reports.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sanitizer state is process-global, so exercise the algorithm in
    // one sequential test to avoid cross-test interference.
    #[test]
    fn lockset_algorithm_end_to_end() {
        set_enabled(true);
        let inst = new_instance();

        // Exclusive accesses by one thread never report, locked or not.
        on_access("striped", (inst, 0), AccessKind::Write);
        on_access("striped", (inst, 0), AccessKind::Write);
        assert_eq!(race_count(), 0);

        // A second thread accessing with a common lock keeps C(v) alive.
        let locked = new_instance();
        std::thread::scope(|s| {
            s.spawn(|| {
                let _l = hold(7);
                on_access("striped", (locked, 1), AccessKind::Write);
            });
        });
        std::thread::scope(|s| {
            s.spawn(|| {
                let _l = hold(7);
                on_access("striped", (locked, 1), AccessKind::Write);
            });
        });
        assert_eq!(race_count(), 0, "common lock 7 protects the row");

        // A second thread accessing with no lock empties C(v): one report.
        std::thread::scope(|s| {
            s.spawn(|| on_access("atomic", (inst, 0), AccessKind::Read));
        });
        assert_eq!(race_count(), 1);
        let reports = take_reports();
        assert_eq!(reports[0].location, (inst, 0));
        assert_eq!(reports[0].site, "atomic");

        // Racy locations report only once.
        std::thread::scope(|s| {
            s.spawn(|| on_access("atomic", (inst, 0), AccessKind::Write));
        });
        assert_eq!(race_count(), 0);

        // Disjoint locksets also race (no common protecting lock): the
        // third access intersects C(v) = {2} with {1} and reports.
        let disjoint = new_instance();
        for lock in [1, 2, 1] {
            std::thread::scope(|s| {
                s.spawn(move || {
                    let _l = hold(lock);
                    on_access("striped", (disjoint, 2), AccessKind::Write);
                });
            });
        }
        assert_eq!(take_reports().len(), 1);

        // Disabled: nothing records.
        set_enabled(false);
        std::thread::scope(|s| {
            s.spawn(|| on_access("atomic", (inst, 9), AccessKind::Write));
        });
        std::thread::scope(|s| {
            s.spawn(|| on_access("atomic", (inst, 9), AccessKind::Write));
        });
        assert_eq!(race_count(), 0);
    }
}
