//! Resumable training checkpoints.
//!
//! A checkpoint is everything the pipeline needs to continue a run as if
//! it had never stopped: the model (factors + biases), the convergence
//! trace so far, accumulated update/time counters, the next epoch index,
//! and the learning-rate evaluator's adaptive state. Because every update
//! stream reseeds deterministically per `(seed, epoch)` and Eq. 9's decay
//! is stateless in the epoch index, a resumed run is bit-identical to an
//! uninterrupted one.
//!
//! Binary layout (little-endian): magic `CMFK`, version, resume counters,
//! optional LR state, the trace points, optional bias terms, then the
//! factor matrices in the `model_io` element encoding. Version 2 appends a
//! checksum footer — magic `CSUM`, payload length, FNV-1a digest of every
//! preceding byte — so `--resume` on a truncated or bit-flipped checkpoint
//! fails loudly (naming the offending offset) instead of loading garbage.
//! Version-1 files (no footer) still load.

use std::fs::File;
use std::io::{Cursor, Read, Write};
use std::path::Path;

use crate::faults::fnv1a64;
use crate::feature::Element;
use crate::lrate::LrState;
use crate::metrics::{Trace, TracePoint};
use crate::model_io::{read_matrix, write_matrix, ModelIoError};

use super::model::{BiasTerms, EngineModel};

const MAGIC: &[u8; 4] = b"CMFK";
const VERSION: u32 = 2;
/// Magic of the version-2 checksum footer.
const FOOTER_MAGIC: &[u8; 4] = b"CSUM";
/// Footer bytes: magic + payload length (u64) + FNV-1a digest (u64).
const FOOTER_LEN: usize = 4 + 8 + 8;

/// Loop state needed to continue a run where it left off.
#[derive(Debug, Clone, PartialEq)]
pub struct ResumeState {
    /// First epoch (0-based) the resumed run should execute.
    pub next_epoch: u32,
    /// Updates accumulated by the checkpointed epochs.
    pub updates: u64,
    /// Time-domain seconds accumulated by the checkpointed epochs.
    pub sim_seconds: f64,
    /// Convergence trace of the checkpointed epochs.
    pub trace: Trace,
    /// Learning-rate evaluator state (adaptive schedules).
    pub lr: Option<LrState>,
}

fn write_u32<W: Write>(w: &mut W, x: u32) -> std::io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn write_u64<W: Write>(w: &mut W, x: u64) -> std::io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn write_f32<W: Write>(w: &mut W, x: f32) -> std::io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn write_f64<W: Write>(w: &mut W, x: f64) -> std::io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn read_u32<R: Read>(r: &mut R) -> std::io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> std::io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f32<R: Read>(r: &mut R) -> std::io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

fn read_f64<R: Read>(r: &mut R) -> std::io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn read_u8<R: Read>(r: &mut R) -> std::io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn write_f32_vec<W: Write>(w: &mut W, v: &[f32]) -> std::io::Result<()> {
    write_u32(w, v.len() as u32)?;
    for &x in v {
        write_f32(w, x)?;
    }
    Ok(())
}

fn read_f32_vec<R: Read>(r: &mut R) -> std::io::Result<Vec<f32>> {
    let len = read_u32(r)? as usize;
    let mut v = Vec::with_capacity(len.min(1 << 20));
    for _ in 0..len {
        v.push(read_f32(r)?);
    }
    Ok(v)
}

/// Writes a checkpoint of `model` + `state` to `path` (atomically enough
/// for a single writer: written to a temp sibling, then renamed). The
/// payload is serialised in memory first so the version-2 checksum footer
/// can digest every byte that precedes it.
pub fn save_checkpoint<E: Element>(
    path: impl AsRef<Path>,
    model: &EngineModel<E>,
    state: &ResumeState,
) -> Result<(), ModelIoError> {
    let path = path.as_ref();
    let tmp = path.with_extension("tmp");
    {
        let mut w: Vec<u8> = Vec::new();
        w.write_all(MAGIC)?;
        write_u32(&mut w, VERSION)?;
        write_u32(&mut w, state.next_epoch)?;
        write_u64(&mut w, state.updates)?;
        write_f64(&mut w, state.sim_seconds)?;
        match state.lr {
            None => w.write_all(&[0u8])?,
            Some(lr) => {
                w.write_all(&[1u8])?;
                write_f32(&mut w, lr.current)?;
                match lr.last_loss {
                    None => w.write_all(&[0u8])?,
                    Some(loss) => {
                        w.write_all(&[1u8])?;
                        write_f64(&mut w, loss)?;
                    }
                }
            }
        }
        write_u32(&mut w, state.trace.points.len() as u32)?;
        for pt in &state.trace.points {
            write_u32(&mut w, pt.epoch)?;
            write_u64(&mut w, pt.updates)?;
            write_f64(&mut w, pt.rmse)?;
            write_f64(&mut w, pt.seconds)?;
        }
        match &model.bias {
            None => w.write_all(&[0u8])?,
            Some(b) => {
                w.write_all(&[1u8])?;
                write_f32(&mut w, b.mu)?;
                write_f32_vec(&mut w, &b.user)?;
                write_f32_vec(&mut w, &b.item)?;
            }
        }
        write_u32(&mut w, E::BYTES as u32)?;
        write_u32(&mut w, model.p.rows())?;
        write_u32(&mut w, model.q.rows())?;
        write_u32(&mut w, model.p.k())?;
        write_matrix(&mut w, &model.p)?;
        write_matrix(&mut w, &model.q)?;
        // Checksum footer over every payload byte.
        let digest = fnv1a64(&w);
        let payload_len = w.len() as u64;
        w.write_all(FOOTER_MAGIC)?;
        write_u64(&mut w, payload_len)?;
        write_u64(&mut w, digest)?;
        let mut f = File::create(&tmp)?;
        f.write_all(&w)?;
        f.flush()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Splits a version-2 checkpoint into its payload, verifying the checksum
/// footer. Errors name the offending offset so a truncated or bit-flipped
/// file fails loudly instead of loading garbage.
fn verify_footer(bytes: &[u8]) -> Result<&[u8], ModelIoError> {
    if bytes.len() < FOOTER_LEN {
        return Err(ModelIoError::Format(format!(
            "checkpoint truncated at offset {}: too short to hold the \
             {FOOTER_LEN}-byte checksum footer",
            bytes.len()
        )));
    }
    let footer_at = bytes.len() - FOOTER_LEN;
    let (payload, footer) = bytes.split_at(footer_at);
    if &footer[..4] != FOOTER_MAGIC {
        return Err(ModelIoError::Format(format!(
            "no checksum footer at offset {footer_at}: checkpoint truncated \
             or corrupted (expected CSUM magic)"
        )));
    }
    let stored_len = u64::from_le_bytes(footer[4..12].try_into().expect("8 bytes"));
    if stored_len != payload.len() as u64 {
        return Err(ModelIoError::Format(format!(
            "checkpoint truncated: payload is {} bytes but the footer at \
             offset {footer_at} records {stored_len}",
            payload.len()
        )));
    }
    let stored_digest = u64::from_le_bytes(footer[12..20].try_into().expect("8 bytes"));
    let digest = fnv1a64(payload);
    if digest != stored_digest {
        return Err(ModelIoError::Format(format!(
            "checkpoint checksum mismatch over bytes 0..{footer_at}: \
             computed {digest:#018x}, footer records {stored_digest:#018x} \
             (bit flip on disk or in transfer)"
        )));
    }
    Ok(payload)
}

/// Loads a checkpoint written by [`save_checkpoint`]. The stored element
/// width must match `E`. Version-2 files are checksum-verified before any
/// field is parsed; version-1 files (pre-footer) still load.
pub fn load_checkpoint<E: Element>(
    path: impl AsRef<Path>,
) -> Result<(EngineModel<E>, ResumeState), ModelIoError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < 8 {
        return Err(ModelIoError::Format(format!(
            "checkpoint truncated at offset {}: no room for magic + version",
            bytes.len()
        )));
    }
    if &bytes[..4] != MAGIC {
        return Err(ModelIoError::Format(
            "bad magic: not a cuMF checkpoint".into(),
        ));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    let payload: &[u8] = match version {
        1 => &bytes,
        2 => verify_footer(&bytes)?,
        other => {
            return Err(ModelIoError::Format(format!(
                "unsupported checkpoint version {other}"
            )));
        }
    };
    let mut r = Cursor::new(payload);
    r.set_position(8); // past magic + version
    let next_epoch = read_u32(&mut r)?;
    let updates = read_u64(&mut r)?;
    let sim_seconds = read_f64(&mut r)?;
    let lr = match read_u8(&mut r)? {
        0 => None,
        _ => {
            let current = read_f32(&mut r)?;
            let last_loss = match read_u8(&mut r)? {
                0 => None,
                _ => Some(read_f64(&mut r)?),
            };
            Some(LrState { current, last_loss })
        }
    };
    let n_points = read_u32(&mut r)?;
    let mut trace = Trace::default();
    for _ in 0..n_points {
        let epoch = read_u32(&mut r)?;
        let pt_updates = read_u64(&mut r)?;
        let rmse = read_f64(&mut r)?;
        let seconds = read_f64(&mut r)?;
        trace.push(TracePoint {
            epoch,
            updates: pt_updates,
            rmse,
            seconds,
        });
    }
    let bias = match read_u8(&mut r)? {
        0 => None,
        _ => {
            let mu = read_f32(&mut r)?;
            let user = read_f32_vec(&mut r)?;
            let item = read_f32_vec(&mut r)?;
            Some(BiasTerms { mu, user, item })
        }
    };
    let elem = read_u32(&mut r)?;
    if elem as usize != E::BYTES {
        return Err(ModelIoError::Format(format!(
            "element width mismatch: checkpoint has {elem}-byte elements, requested {}-byte ({})",
            E::BYTES,
            E::NAME
        )));
    }
    let m = read_u32(&mut r)?;
    let n = read_u32(&mut r)?;
    let k = read_u32(&mut r)?;
    if k == 0 {
        return Err(ModelIoError::Format("k must be positive".into()));
    }
    let p = read_matrix::<E, _>(&mut r, m, k)?;
    let q = read_matrix::<E, _>(&mut r, n, k)?;
    Ok((
        EngineModel { p, q, bias },
        ResumeState {
            next_epoch,
            updates,
            sim_seconds,
            trace,
            lr,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::FactorMatrix;
    use cumf_rng::{ChaCha8Rng, SeedableRng};

    fn ckpt_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("cumf_ckpt_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_state() -> ResumeState {
        let mut trace = Trace::default();
        trace.push(TracePoint {
            epoch: 1,
            updates: 100,
            rmse: 0.9,
            seconds: 0.5,
        });
        trace.push(TracePoint {
            epoch: 2,
            updates: 200,
            rmse: 0.7,
            seconds: 1.0,
        });
        ResumeState {
            next_epoch: 2,
            updates: 200,
            sim_seconds: 1.0,
            trace,
            lr: Some(LrState {
                current: 0.05,
                last_loss: Some(0.7),
            }),
        }
    }

    #[test]
    fn round_trip_unbiased() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let model = EngineModel::<f32> {
            p: FactorMatrix::random_init(6, 4, &mut rng),
            q: FactorMatrix::random_init(5, 4, &mut rng),
            bias: None,
        };
        let state = sample_state();
        let path = ckpt_path("unbiased.cmfk");
        save_checkpoint(&path, &model, &state).unwrap();
        let (m2, s2) = load_checkpoint::<f32>(&path).unwrap();
        assert_eq!(m2, model);
        assert_eq!(s2, state);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn round_trip_biased() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let model = EngineModel::<f32> {
            p: FactorMatrix::random_init(3, 2, &mut rng),
            q: FactorMatrix::random_init(4, 2, &mut rng),
            bias: Some(BiasTerms {
                mu: 3.5,
                user: vec![0.1, -0.2, 0.3],
                item: vec![-0.25; 4],
            }),
        };
        let mut state = sample_state();
        state.lr = None;
        let path = ckpt_path("biased.cmfk");
        save_checkpoint(&path, &model, &state).unwrap();
        let (m2, s2) = load_checkpoint::<f32>(&path).unwrap();
        assert_eq!(m2.bias, model.bias);
        assert_eq!(m2.p, model.p);
        assert_eq!(s2.lr, None);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rejects_model_file_magic() {
        let path = ckpt_path("not_a_ckpt.cmfk");
        std::fs::write(&path, b"CMFM\x01\x00\x00\x00").unwrap();
        let err = load_checkpoint::<f32>(&path).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    fn saved_bytes(name: &str) -> (std::path::PathBuf, Vec<u8>) {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let model = EngineModel::<f32> {
            p: FactorMatrix::random_init(4, 3, &mut rng),
            q: FactorMatrix::random_init(5, 3, &mut rng),
            bias: None,
        };
        let path = ckpt_path(name);
        save_checkpoint(&path, &model, &sample_state()).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        (path, bytes)
    }

    #[test]
    fn truncated_checkpoint_fails_loudly_with_offset() {
        let (path, bytes) = saved_bytes("truncated.cmfk");
        // Cut mid-payload: the footer magic is gone, so the loader must
        // report the offset where it expected CSUM.
        let cut = bytes.len() - FOOTER_LEN - 7;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let err = load_checkpoint::<f32>(&path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("truncated") || msg.contains("CSUM"), "{msg}");
        assert!(
            msg.contains(&format!("{}", cut - FOOTER_LEN)) || msg.contains("offset"),
            "error must name an offset: {msg}"
        );
        // Cut inside the footer: length check fires instead.
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let err = load_checkpoint::<f32>(&path).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bit_flipped_checkpoint_fails_loudly_with_offset() {
        let (path, mut bytes) = saved_bytes("bitflip.cmfk");
        // Flip one bit deep in the factor data, past every header field.
        let victim = bytes.len() - FOOTER_LEN - 10;
        bytes[victim] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        let err = load_checkpoint::<f32>(&path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("checksum mismatch"), "{msg}");
        let footer_at = bytes.len() - FOOTER_LEN;
        assert!(
            msg.contains(&format!("0..{footer_at}")),
            "error must name the digested byte range: {msg}"
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn version1_checkpoint_without_footer_still_loads() {
        let (path, bytes) = saved_bytes("v1compat.cmfk");
        // A version-1 file is exactly the version-2 payload with the
        // version field set to 1 and no footer appended.
        let mut v1 = bytes[..bytes.len() - FOOTER_LEN].to_vec();
        v1[4..8].copy_from_slice(&1u32.to_le_bytes());
        std::fs::write(&path, &v1).unwrap();
        let (model, state) = load_checkpoint::<f32>(&path).unwrap();
        assert_eq!(state, sample_state());
        assert_eq!(model.p.rows(), 4);
        assert_eq!(model.q.rows(), 5);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rejects_wrong_element_width() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let model = EngineModel::<f32> {
            p: FactorMatrix::random_init(2, 2, &mut rng),
            q: FactorMatrix::random_init(2, 2, &mut rng),
            bias: None,
        };
        let path = ckpt_path("width.cmfk");
        save_checkpoint(&path, &model, &sample_state()).unwrap();
        let err = load_checkpoint::<crate::half::F16>(&path).unwrap_err();
        assert!(err.to_string().contains("element width"), "{err}");
        let _ = std::fs::remove_file(path);
    }
}
