//! Execution-engine layer: how one epoch's updates touch the model.
//!
//! An [`ExecEngine`] turns a scheduled stream of samples into model
//! mutations under a chosen execution semantics:
//!
//! * [`SequentialEngine`] — apply each update immediately in worker order
//!   (exact for conflict-free schedules);
//! * [`StaleAdditiveEngine`] — the round-based Hogwild! conflict engine
//!   (snapshot reads, additive commits) of [`crate::concurrent`];
//! * [`ThreadedHogwildEngine`] — real OS threads racing on atomic f32
//!   cells (cross-validation on multi-core hosts).
//!
//! All three support the bias-free model; the first two also train the
//! biased model (`μ + b_u + b_v + p·q`), extending the same stale-read /
//! additive-commit semantics to the bias cells.

use std::sync::Arc;

use cumf_data::CooMatrix;

use crate::concurrent::{threaded_hogwild_epoch, AtomicFactors, EpochStats, ExecMode};
use crate::feature::Element;
use crate::kernel::{sgd_delta, sgd_update};
use crate::sched::{StreamItem, UpdateStream};

use super::model::ModelView;

/// An execution semantics for one epoch of scheduled updates.
pub trait ExecEngine<E: Element> {
    /// Runs one epoch of `stream` against the model view.
    fn run_epoch(
        &mut self,
        data: &CooMatrix,
        model: ModelView<'_, E>,
        stream: &mut dyn UpdateStream,
        gamma: f32,
        lambda: f32,
    ) -> EpochStats;

    /// Engine name for traces and reports.
    fn name(&self) -> &'static str;
}

/// Immediate in-order application ([`ExecMode::Sequential`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialEngine;

/// Round-snapshot reads + additive commits ([`ExecMode::StaleAdditive`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct StaleAdditiveEngine;

/// Real-thread lock-free Hogwild! over atomic factors. Ignores the stream's
/// ordering (threads claim `batch`-sample chunks off a shared counter) and
/// does not support the biased model.
#[derive(Debug, Clone, Copy)]
pub struct ThreadedHogwildEngine {
    /// OS threads to spawn.
    pub threads: usize,
    /// Samples claimed per counter grab.
    pub batch: usize,
}

impl<E: Element> ExecEngine<E> for SequentialEngine {
    fn run_epoch(
        &mut self,
        data: &CooMatrix,
        model: ModelView<'_, E>,
        stream: &mut dyn UpdateStream,
        gamma: f32,
        lambda: f32,
    ) -> EpochStats {
        sequential_epoch(data, model, stream, gamma, lambda)
    }

    fn name(&self) -> &'static str {
        "sequential"
    }
}

impl<E: Element> ExecEngine<E> for StaleAdditiveEngine {
    fn run_epoch(
        &mut self,
        data: &CooMatrix,
        model: ModelView<'_, E>,
        stream: &mut dyn UpdateStream,
        gamma: f32,
        lambda: f32,
    ) -> EpochStats {
        stale_additive_epoch(data, model, stream, gamma, lambda)
    }

    fn name(&self) -> &'static str {
        "stale-additive"
    }
}

impl<E: Element> ExecEngine<E> for ThreadedHogwildEngine {
    fn run_epoch(
        &mut self,
        data: &CooMatrix,
        model: ModelView<'_, E>,
        stream: &mut dyn UpdateStream,
        gamma: f32,
        lambda: f32,
    ) -> EpochStats {
        let _ = stream;
        threaded_epoch(data, model, self.threads, self.batch, gamma, lambda)
    }

    fn name(&self) -> &'static str {
        "threaded-hogwild"
    }
}

/// The engine implementing an [`ExecMode`], sized for `workers` parallel
/// workers fetching `batch` samples at a time (both only used by the
/// threaded mode).
pub fn engine_for<E: Element>(
    mode: ExecMode,
    workers: usize,
    batch: usize,
) -> Box<dyn ExecEngine<E>> {
    match mode {
        ExecMode::Sequential => Box::new(SequentialEngine),
        ExecMode::StaleAdditive => Box::new(StaleAdditiveEngine),
        ExecMode::Threaded => Box::new(ThreadedHogwildEngine {
            threads: workers.max(1),
            batch: batch.max(1),
        }),
    }
}

/// One epoch of immediate in-order application. With biases present, each
/// sample updates `b_u`/`b_v` with the prediction error before the factor
/// rows (both against the pre-update values, as in Algorithm 1).
///
/// Sequential execution is only *exact* for conflict-free schedules, so
/// this engine verifies the invariant as it goes: rounds in which two
/// workers touch the same P row or Q column are counted in
/// [`EpochStats::row_collisions`]/[`EpochStats::col_collisions`]. A racy
/// schedule therefore no longer serialises *silently* — upstream callers
/// ([`crate::solver`]) additionally refuse sequential execution unless the
/// schedule carries a [`crate::sched::ConflictCert`].
pub fn sequential_epoch<E: Element, S: UpdateStream + ?Sized>(
    data: &CooMatrix,
    mut model: ModelView<'_, E>,
    stream: &mut S,
    gamma: f32,
    lambda: f32,
) -> EpochStats {
    let s = stream.workers();
    let k = model.p.k() as usize;
    let mut stats = EpochStats::default();
    let mut exhausted = vec![false; s];
    let mut live = s;
    let mut pu = vec![0.0f32; k];
    let mut qv = vec![0.0f32; k];
    let mut round_rows: Vec<u32> = Vec::with_capacity(s);
    let mut round_cols: Vec<u32> = Vec::with_capacity(s);
    while live > 0 {
        stats.rounds += 1;
        round_rows.clear();
        round_cols.clear();
        for (w, done) in exhausted.iter_mut().enumerate() {
            if *done {
                continue;
            }
            match stream.next(w) {
                StreamItem::Sample(i) => {
                    let e = data.get(i);
                    round_rows.push(e.u);
                    round_cols.push(e.v);
                    match model.bias.as_deref_mut() {
                        None => {
                            // Split borrows: p and q are distinct matrices.
                            sgd_update(
                                model.p.row_mut(e.u),
                                model.q.row_mut(e.v),
                                e.r,
                                gamma,
                                lambda,
                            );
                        }
                        Some(bias) => {
                            model.p.load_row(e.u, &mut pu);
                            model.q.load_row(e.v, &mut qv);
                            let bu = bias.user[e.u as usize];
                            let bv = bias.item[e.v as usize];
                            let pred = bias.mu
                                + bu
                                + bv
                                + pu.iter().zip(&qv).map(|(a, b)| a * b).sum::<f32>();
                            let err = e.r - pred;
                            bias.user[e.u as usize] = bu + gamma * (err - lambda * bu);
                            bias.item[e.v as usize] = bv + gamma * (err - lambda * bv);
                            for j in 0..k {
                                let pj = pu[j];
                                let qj = qv[j];
                                pu[j] = pj + gamma * (err * qj - lambda * pj);
                                qv[j] = qj + gamma * (err * pj - lambda * qj);
                            }
                            model.p.store_row(e.u, &pu);
                            model.q.store_row(e.v, &qv);
                        }
                    }
                    stats.updates += 1;
                }
                StreamItem::Stall => stats.stalls += 1,
                StreamItem::Exhausted => {
                    *done = true;
                    live -= 1;
                }
            }
        }
        if s > 1 {
            round_rows.sort_unstable();
            if round_rows.windows(2).any(|w| w[0] == w[1]) {
                stats.row_collisions += 1;
            }
            round_cols.sort_unstable();
            if round_cols.windows(2).any(|w| w[0] == w[1]) {
                stats.col_collisions += 1;
            }
        }
    }
    stats
}

/// One epoch of round-snapshot reads + additive commits (the Hogwild!
/// conflict engine — see [`crate::concurrent`] for the semantics). Bias
/// cells, when present, follow the same protocol: read with the round's
/// snapshot, deltas committed additively.
pub fn stale_additive_epoch<E: Element, S: UpdateStream + ?Sized>(
    data: &CooMatrix,
    mut model: ModelView<'_, E>,
    stream: &mut S,
    gamma: f32,
    lambda: f32,
) -> EpochStats {
    let s = stream.workers();
    let k = model.p.k() as usize;
    let mu = model.bias.as_ref().map(|b| b.mu).unwrap_or(0.0);
    let biased = model.bias.is_some();
    let mut stats = EpochStats::default();
    let mut exhausted = vec![false; s];
    let mut live = s;

    // Round buffers, reused across rounds.
    let mut round: Vec<(u32, u32)> = Vec::with_capacity(s); // (u, v) per committed worker
    let mut snap_p = vec![0.0f32; s * k];
    let mut snap_q = vec![0.0f32; s * k];
    let mut dp = vec![0.0f32; s * k];
    let mut dq = vec![0.0f32; s * k];
    let mut ratings: Vec<f32> = Vec::with_capacity(s);
    let mut snap_bu = vec![0.0f32; s];
    let mut snap_bv = vec![0.0f32; s];
    let mut dbu = vec![0.0f32; s];
    let mut dbv = vec![0.0f32; s];

    while live > 0 {
        stats.rounds += 1;
        round.clear();
        ratings.clear();
        for (w, done) in exhausted.iter_mut().enumerate() {
            if *done {
                continue;
            }
            match stream.next(w) {
                StreamItem::Sample(i) => {
                    let e = data.get(i);
                    round.push((e.u, e.v));
                    ratings.push(e.r);
                }
                StreamItem::Stall => stats.stalls += 1,
                StreamItem::Exhausted => {
                    *done = true;
                    live -= 1;
                }
            }
        }
        if round.is_empty() {
            continue;
        }
        // Phase 1: snapshot reads (all against pre-round state).
        for (idx, &(u, v)) in round.iter().enumerate() {
            model.p.load_row(u, &mut snap_p[idx * k..(idx + 1) * k]);
            model.q.load_row(v, &mut snap_q[idx * k..(idx + 1) * k]);
            if let Some(bias) = model.bias.as_deref() {
                snap_bu[idx] = bias.user[u as usize];
                snap_bv[idx] = bias.item[v as usize];
            }
        }
        // Collision accounting.
        {
            let mut rows: Vec<u32> = round.iter().map(|&(u, _)| u).collect();
            rows.sort_unstable();
            if rows.windows(2).any(|w| w[0] == w[1]) {
                stats.row_collisions += 1;
            }
            let mut cols: Vec<u32> = round.iter().map(|&(_, v)| v).collect();
            cols.sort_unstable();
            if cols.windows(2).any(|w| w[0] == w[1]) {
                stats.col_collisions += 1;
            }
        }
        // Phase 2: compute deltas against the snapshot.
        for idx in 0..round.len() {
            let lo = idx * k;
            let hi = lo + k;
            if biased {
                let sp = &snap_p[lo..hi];
                let sq = &snap_q[lo..hi];
                let pred = mu
                    + snap_bu[idx]
                    + snap_bv[idx]
                    + sp.iter().zip(sq).map(|(a, b)| a * b).sum::<f32>();
                let err = ratings[idx] - pred;
                dbu[idx] = gamma * (err - lambda * snap_bu[idx]);
                dbv[idx] = gamma * (err - lambda * snap_bv[idx]);
                for j in 0..k {
                    dp[lo + j] = gamma * (err * sq[j] - lambda * sp[j]);
                    dq[lo + j] = gamma * (err * sp[j] - lambda * sq[j]);
                }
            } else {
                sgd_delta(
                    &snap_p[lo..hi],
                    &snap_q[lo..hi],
                    ratings[idx],
                    gamma,
                    lambda,
                    &mut dp[lo..hi],
                    &mut dq[lo..hi],
                );
            }
        }
        // Phase 3: additive commit (colliding corrections stack — the
        // Hogwild! overshoot).
        let mut acc = vec![0.0f32; k];
        for (idx, &(u, v)) in round.iter().enumerate() {
            let lo = idx * k;
            model.p.load_row(u, &mut acc);
            for (a, d) in acc.iter_mut().zip(&dp[lo..lo + k]) {
                *a += d;
            }
            model.p.store_row(u, &acc);
            model.q.load_row(v, &mut acc);
            for (a, d) in acc.iter_mut().zip(&dq[lo..lo + k]) {
                *a += d;
            }
            model.q.store_row(v, &acc);
            if let Some(bias) = model.bias.as_deref_mut() {
                bias.user[u as usize] += dbu[idx];
                bias.item[v as usize] += dbv[idx];
            }
        }
        stats.updates += round.len() as u64;
    }
    stats
}

/// One epoch on real OS threads racing over atomic factor cells (see
/// [`threaded_hogwild_epoch`]). `rounds` is approximated as
/// `ceil(updates / threads)` for the simulated-time models; collision
/// counts are unavailable (the races are real, not replayed).
///
/// # Panics
///
/// Panics when the view carries bias terms: the threaded executor races
/// on factor cells only.
pub fn threaded_epoch<E: Element>(
    data: &CooMatrix,
    model: ModelView<'_, E>,
    threads: usize,
    batch: usize,
    gamma: f32,
    lambda: f32,
) -> EpochStats {
    assert!(
        model.bias.is_none(),
        "threaded Hogwild! does not support the biased model"
    );
    let p = Arc::new(AtomicFactors::from_matrix(model.p));
    let q = Arc::new(AtomicFactors::from_matrix(model.q));
    let updates = threaded_hogwild_epoch(data, &p, &q, threads, batch, gamma, lambda);
    *model.p = p.to_matrix();
    *model.q = q.to_matrix();
    EpochStats {
        updates,
        rounds: updates.div_ceil(threads as u64),
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::model::{BiasTerms, EngineModel};
    use crate::feature::FactorMatrix;
    use crate::sched::SerialStream;
    use cumf_rng::ChaCha8Rng;
    use cumf_rng::SeedableRng;

    fn tiny_data() -> CooMatrix {
        let mut coo = CooMatrix::new(20, 20);
        for i in 0..200u32 {
            coo.push(i % 20, (i * 7) % 20, ((i % 5) as f32) - 2.0);
        }
        coo
    }

    fn unbiased_model(seed: u64) -> EngineModel<f32> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        EngineModel::init_unbiased(&tiny_data(), 4, &mut rng)
    }

    fn biased_model(seed: u64) -> EngineModel<f32> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        EngineModel::init_biased(&tiny_data(), 4, &mut rng)
    }

    #[test]
    fn biased_stale_single_worker_matches_sequential() {
        // One worker → no collisions → stale-additive must equal the
        // sequential biased path (modulo the dot-product order, which both
        // paths share: the plain serial sum).
        let data = tiny_data();
        let mut m1 = biased_model(3);
        let mut m2 = m1.clone();
        let mut s1 = SerialStream::new(data.nnz());
        let mut s2 = SerialStream::new(data.nnz());
        sequential_epoch(&data, m1.view(), &mut s1, 0.05, 0.01);
        stale_additive_epoch(&data, m2.view(), &mut s2, 0.05, 0.01);
        let b1 = m1.bias.as_ref().unwrap();
        let b2 = m2.bias.as_ref().unwrap();
        for (a, b) in b1.user.iter().zip(&b2.user) {
            assert!((a - b).abs() < 1e-6);
        }
        for (a, b) in b1.item.iter().zip(&b2.item) {
            assert!((a - b).abs() < 1e-6);
        }
        for r in 0..20 {
            for (a, b) in m1.p.row(r).iter().zip(m2.p.row(r)) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn unbiased_stale_matches_concurrent_engine_bitwise() {
        // The extracted epoch body must be bit-identical to the historical
        // `concurrent::run_epoch` path it replaced.
        let data = tiny_data();
        let mut m = unbiased_model(5);
        let (mut p2, mut q2) = (m.p.clone(), m.q.clone());
        let mut s1 = SerialStream::new(data.nnz());
        let mut s2 = SerialStream::new(data.nnz());
        stale_additive_epoch(&data, m.view(), &mut s1, 0.05, 0.01);
        crate::concurrent::run_epoch(
            &data,
            &mut p2,
            &mut q2,
            &mut s2,
            0.05,
            0.01,
            ExecMode::StaleAdditive,
        );
        assert_eq!(m.p, p2);
        assert_eq!(m.q, q2);
    }

    #[test]
    fn threaded_engine_runs_all_updates() {
        let data = tiny_data();
        let mut m = unbiased_model(7);
        let before = m.p.clone();
        let stats = threaded_epoch(&data, m.view(), 4, 16, 0.05, 0.01);
        assert_eq!(stats.updates, 200);
        assert_eq!(stats.rounds, 50);
        assert_ne!(m.p, before);
    }

    #[test]
    #[should_panic(expected = "does not support the biased model")]
    fn threaded_engine_rejects_bias() {
        let data = tiny_data();
        let mut m = unbiased_model(9);
        m.bias = Some(BiasTerms {
            mu: 0.0,
            user: vec![0.0; 20],
            item: vec![0.0; 20],
        });
        let _ = threaded_epoch(&data, m.view(), 2, 8, 0.05, 0.01);
    }

    #[test]
    fn engine_for_covers_every_mode() {
        for (mode, name) in [
            (ExecMode::Sequential, "sequential"),
            (ExecMode::StaleAdditive, "stale-additive"),
            (ExecMode::Threaded, "threaded-hogwild"),
        ] {
            let e = engine_for::<f32>(mode, 4, 64);
            assert_eq!(e.name(), name);
        }
    }

    #[test]
    fn dyn_engine_matches_free_function() {
        let data = tiny_data();
        let mut m1 = unbiased_model(11);
        let mut m2 = m1.clone();
        let mut s1 = SerialStream::new(data.nnz());
        let mut s2 = SerialStream::new(data.nnz());
        let mut engine = engine_for::<f32>(ExecMode::Sequential, 1, 1);
        engine.run_epoch(&data, m1.view(), &mut s1, 0.05, 0.01);
        sequential_epoch(&data, m2.view(), &mut s2, 0.05, 0.01);
        assert_eq!(m1.p, m2.p);
        assert_eq!(m1.q, m2.q);
    }

    #[test]
    fn _unused_model_helper() {
        // Keep the FactorMatrix import exercised for the f32 helper path.
        let m: FactorMatrix<f32> = FactorMatrix::from_f32_slice(1, 1, &[1.0]);
        assert_eq!(m.row(0), &[1.0]);
    }
}
