//! Observer layer: side effects hanging off the epoch loop.
//!
//! The pipeline invokes every [`EpochObserver`] after each epoch's
//! evaluation; observers see an immutable [`EpochCtx`] snapshot plus the
//! model, and may vote to stop the run. The stock observers cover the
//! three concerns the monolithic loops used to hand-roll:
//!
//! * [`ObsProbes`] — the solver's counter/gauge/histogram surface;
//! * [`DivergenceGuard`] — the RMSE ceiling (and non-finite) early exit;
//! * [`Checkpointer`] — periodic checkpoint saves for `--resume`.

use std::path::PathBuf;

use crate::concurrent::EpochStats;
use crate::feature::Element;
use crate::lrate::LrState;
use crate::metrics::Trace;

use super::checkpoint::{save_checkpoint, ResumeState};
use super::model::EngineModel;

/// Everything an observer may inspect after one epoch.
#[derive(Debug)]
pub struct EpochCtx<'a> {
    /// 0-based index of the epoch just executed.
    pub epoch: u32,
    /// Learning rate the epoch ran at.
    pub gamma: f32,
    /// Execution statistics of the epoch.
    pub stats: &'a EpochStats,
    /// Test RMSE after the epoch.
    pub rmse: f64,
    /// Seconds the epoch cost on the run's time domain.
    pub sim_epoch_seconds: f64,
    /// Measured wall seconds of the update phase.
    pub epoch_wall_seconds: f64,
    /// Measured wall seconds of the RMSE evaluation.
    pub eval_wall_seconds: f64,
    /// Updates accumulated across the run so far.
    pub total_updates: u64,
    /// Time-domain seconds accumulated across the run so far.
    pub total_sim_seconds: f64,
    /// Convergence trace so far (includes this epoch's point).
    pub trace: &'a Trace,
    /// Learning-rate evaluator state after this epoch's observation.
    pub lr: LrState,
}

/// An observer's verdict on whether training should continue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineControl {
    /// Keep training.
    Continue,
    /// Stop after this epoch.
    Stop {
        /// True when the stop is a divergence abort (flags the result).
        diverged: bool,
    },
}

/// A hook invoked by the pipeline after every epoch.
pub trait EpochObserver<E: Element> {
    /// Called after each epoch's evaluation; return
    /// [`PipelineControl::Stop`] to end the run early.
    fn on_epoch_end(&mut self, ctx: &EpochCtx<'_>, model: &EngineModel<E>) -> PipelineControl;
}

/// The solver's observability surface: per-epoch counters, gauges, and
/// histograms in the global `cumf-obs` registry (every probe is a no-op
/// unless recording is enabled).
pub struct ObsProbes {
    epochs: cumf_obs::Counter,
    updates: cumf_obs::Counter,
    stalls: cumf_obs::Counter,
    row_coll: cumf_obs::Counter,
    col_coll: cumf_obs::Counter,
    rmse: cumf_obs::Gauge,
    gamma: cumf_obs::Gauge,
    epoch_secs: cumf_obs::Histogram,
    eval_secs: cumf_obs::Histogram,
    sim_secs: cumf_obs::Histogram,
}

impl ObsProbes {
    /// Registers (or re-attaches to) the solver series.
    pub fn new() -> Self {
        ObsProbes {
            epochs: cumf_obs::counter("cumf_solver_epochs_total", "Training epochs executed"),
            updates: cumf_obs::counter("cumf_solver_updates_total", "SGD updates applied"),
            stalls: cumf_obs::counter(
                "cumf_solver_stalls_total",
                "Worker-round slots lost to scheduler stalls",
            ),
            row_coll: cumf_obs::counter(
                "cumf_solver_row_collisions_total",
                "Rounds where two or more workers touched the same P row",
            ),
            col_coll: cumf_obs::counter(
                "cumf_solver_col_collisions_total",
                "Rounds where two or more workers touched the same Q column",
            ),
            rmse: cumf_obs::gauge("cumf_solver_rmse", "Test RMSE after the most recent epoch"),
            gamma: cumf_obs::gauge(
                "cumf_solver_gamma",
                "Learning rate of the most recent epoch",
            ),
            epoch_secs: cumf_obs::histogram(
                "cumf_solver_epoch_seconds",
                "Wall-clock seconds per training epoch (updates only, excluding evaluation)",
            ),
            eval_secs: cumf_obs::histogram(
                "cumf_solver_rmse_eval_seconds",
                "Wall-clock seconds per test-RMSE evaluation",
            ),
            sim_secs: cumf_obs::histogram(
                "cumf_solver_sim_epoch_seconds",
                "Simulated seconds per epoch under the attached machine-time model",
            ),
        }
    }
}

impl Default for ObsProbes {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Element> EpochObserver<E> for ObsProbes {
    fn on_epoch_end(&mut self, ctx: &EpochCtx<'_>, _model: &EngineModel<E>) -> PipelineControl {
        self.epoch_secs.record(ctx.epoch_wall_seconds);
        self.eval_secs.record(ctx.eval_wall_seconds);
        if ctx.sim_epoch_seconds > 0.0 {
            self.sim_secs.record(ctx.sim_epoch_seconds);
        }
        self.epochs.inc();
        self.updates.add(ctx.stats.updates);
        self.stalls.add(ctx.stats.stalls);
        self.row_coll.add(ctx.stats.row_collisions);
        self.col_coll.add(ctx.stats.col_collisions);
        self.rmse.set(ctx.rmse);
        self.gamma.set(ctx.gamma as f64);
        PipelineControl::Continue
    }
}

/// Stops the run when test RMSE goes non-finite or exceeds a ceiling.
///
/// With [`DivergenceGuard::with_model_scan`] the guard additionally scans
/// the model itself for non-finite factors after each epoch: an injected
/// NaN storm can poison rows the test set never touches, so RMSE alone
/// would let the corruption train onwards and surface epochs later. The
/// scan makes the stop fire on the epoch the storm happened, which is what
/// lets the supervisor's rollback (restoring factors *and* the checkpointed
/// BoldDriver learning-rate state through the CMFK resume machinery)
/// reproduce the fault-free trajectory bit-exactly.
#[derive(Debug, Clone, Copy)]
pub struct DivergenceGuard {
    ceiling: f64,
    scan_model: bool,
}

impl DivergenceGuard {
    /// Guards against RMSE above `ceiling` (or non-finite).
    pub fn new(ceiling: f64) -> Self {
        DivergenceGuard {
            ceiling,
            scan_model: false,
        }
    }

    /// Guards against non-finite RMSE only (the biased/baseline paths).
    pub fn non_finite_only() -> Self {
        DivergenceGuard {
            ceiling: f64::INFINITY,
            scan_model: false,
        }
    }

    /// Also scan the model for non-finite factors/biases after each epoch
    /// (the supervisor's NaN-storm detector).
    pub fn with_model_scan(mut self) -> Self {
        self.scan_model = true;
        self
    }
}

impl<E: Element> EpochObserver<E> for DivergenceGuard {
    fn on_epoch_end(&mut self, ctx: &EpochCtx<'_>, model: &EngineModel<E>) -> PipelineControl {
        if !ctx.rmse.is_finite() || ctx.rmse > self.ceiling {
            return PipelineControl::Stop { diverged: true };
        }
        if self.scan_model && model.non_finite_count() > 0 {
            return PipelineControl::Stop { diverged: true };
        }
        PipelineControl::Continue
    }
}

/// Saves a resumable checkpoint every `every` epochs. IO failures are
/// reported to stderr and training continues — a failed checkpoint must
/// not kill a long run.
#[derive(Debug, Clone)]
pub struct Checkpointer {
    path: PathBuf,
    every: u32,
}

impl Checkpointer {
    /// Checkpoints to `path` after every `every`-th epoch (`every` is
    /// clamped to at least 1).
    pub fn new(path: impl Into<PathBuf>, every: u32) -> Self {
        Checkpointer {
            path: path.into(),
            every: every.max(1),
        }
    }
}

impl<E: Element> EpochObserver<E> for Checkpointer {
    fn on_epoch_end(&mut self, ctx: &EpochCtx<'_>, model: &EngineModel<E>) -> PipelineControl {
        if (ctx.epoch + 1).is_multiple_of(self.every) {
            let state = ResumeState {
                next_epoch: ctx.epoch + 1,
                updates: ctx.total_updates,
                sim_seconds: ctx.total_sim_seconds,
                trace: ctx.trace.clone(),
                lr: Some(ctx.lr),
            };
            if let Err(e) = save_checkpoint(&self.path, model, &state) {
                eprintln!("warning: checkpoint to {} failed: {e}", self.path.display());
            }
        }
        PipelineControl::Continue
    }
}
