//! Backend layer: what one epoch of training *is*.
//!
//! An [`EpochBackend`] owns everything below the epoch loop — data,
//! scheduling state, execution engine — and exposes a single operation:
//! run epoch `e` at learning rate `γ` against an [`EngineModel`].
//!
//! * [`StreamBackend`] — the single-device path: one [`UpdateStream`]
//!   feeding one [`ExecEngine`] (the solver, the biased trainer);
//! * [`PartitionedBackend`] — §6's multi-GPU path: an i×j grid scheduled
//!   in waves of independent blocks, each block executed with the
//!   stale-additive engine, timed by the transfer/compute pipeline model.
//!
//! Custom backends (the `baselines` crate's BIDMach mini-batch and CCD++
//! sweeps) implement the same trait, which is how every solver in the
//! workspace shares one epoch loop.

use cumf_data::CooMatrix;
use cumf_gpu_sim::pipeline::{overlapped, serial, BlockJob};
use cumf_gpu_sim::{GpuSpec, LinkSpec};
use cumf_rng::{ChaCha8Rng, SeedableRng};

use crate::concurrent::EpochStats;
use crate::feature::Element;
use crate::multi_gpu::EpochTiming;
use crate::partition::{schedule_epoch, BlockId, Grid};
use crate::sched::{BatchHogwildStream, UpdateStream};
use crate::SgdUpdateCost;

use super::exec::{stale_additive_epoch, ExecEngine};
use super::model::EngineModel;

/// What one epoch produced: execution statistics plus, for backends with
/// their own machine model, a simulated duration.
#[derive(Debug, Clone)]
pub struct EpochOutcome {
    /// Update/round/collision counts of the epoch.
    pub stats: EpochStats,
    /// Simulated seconds computed by the backend itself (the multi-GPU
    /// pipeline model); `None` when the backend has no native clock.
    pub backend_seconds: Option<f64>,
    /// Detailed timing breakdown, when the backend produces one.
    pub timing: Option<EpochTiming>,
}

impl EpochOutcome {
    /// An outcome carrying only execution statistics.
    pub fn from_stats(stats: EpochStats) -> Self {
        EpochOutcome {
            stats,
            backend_seconds: None,
            timing: None,
        }
    }
}

/// One epoch of training, abstracted over *how* updates are produced.
pub trait EpochBackend<E: Element> {
    /// Runs epoch `epoch` (0-based) at learning rate `gamma`.
    fn run_epoch(
        &mut self,
        epoch: u32,
        gamma: f32,
        lambda: f32,
        model: &mut EngineModel<E>,
    ) -> EpochOutcome;

    /// Parallel workers the backend models (feeds the time domain).
    fn workers(&self) -> u32;

    /// Backend name for reports.
    fn name(&self) -> &'static str;
}

/// The single-device backend: one update stream driving one execution
/// engine over one COO matrix.
pub struct StreamBackend<'a, E: Element> {
    data: &'a CooMatrix,
    stream: Box<dyn UpdateStream>,
    engine: Box<dyn ExecEngine<E>>,
    workers: u32,
}

impl<'a, E: Element> StreamBackend<'a, E> {
    /// Builds the backend; `workers` is the scheme's worker count (what
    /// the machine-time model charges bandwidth for).
    pub fn new(
        data: &'a CooMatrix,
        stream: Box<dyn UpdateStream>,
        engine: Box<dyn ExecEngine<E>>,
        workers: u32,
    ) -> Self {
        StreamBackend {
            data,
            stream,
            engine,
            workers,
        }
    }
}

impl<E: Element> EpochBackend<E> for StreamBackend<'_, E> {
    fn run_epoch(
        &mut self,
        epoch: u32,
        gamma: f32,
        lambda: f32,
        model: &mut EngineModel<E>,
    ) -> EpochOutcome {
        self.stream.begin_epoch(epoch);
        let stats =
            self.engine
                .run_epoch(self.data, model.view(), self.stream.as_mut(), gamma, lambda);
        EpochOutcome::from_stats(stats)
    }

    fn workers(&self) -> u32 {
        self.workers
    }

    fn name(&self) -> &'static str {
        "stream"
    }
}

/// The §6 partitioned backend: schedules waves of independent grid blocks
/// over `g` simulated GPUs, executes each block with the stale-additive
/// engine (batch-Hogwild! inside the block), and prices the epoch with the
/// transfer/compute pipeline model.
pub struct PartitionedBackend<'a, E: Element> {
    data: &'a CooMatrix,
    grid: Grid,
    gpus: u32,
    workers_per_gpu: u32,
    batch: u32,
    overlap: bool,
    cost: SgdUpdateCost,
    gpu: &'a GpuSpec,
    link: &'a LinkSpec,
    rng: ChaCha8Rng,
    epoch_seed: Option<u64>,
    _marker: std::marker::PhantomData<E>,
}

impl<'a, E: Element> PartitionedBackend<'a, E> {
    /// Builds the backend. `rng` must be handed over *after* model
    /// initialisation so wave scheduling consumes the same stream of
    /// randomness as the historical monolithic loop.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        data: &'a CooMatrix,
        grid: Grid,
        gpus: u32,
        workers_per_gpu: u32,
        batch: u32,
        overlap: bool,
        cost: SgdUpdateCost,
        gpu: &'a GpuSpec,
        link: &'a LinkSpec,
        rng: ChaCha8Rng,
    ) -> Self {
        PartitionedBackend {
            data,
            grid,
            gpus,
            workers_per_gpu,
            batch,
            overlap,
            cost,
            gpu,
            link,
            rng,
            epoch_seed: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Switches wave scheduling from the advancing RNG stream to a pure
    /// per-epoch function of `seed`: epoch `e` always draws its schedule
    /// from `ChaCha8(seed ⊕ h(e))`, no matter what ran before. The
    /// historical stream stays the default; the fault supervisor needs
    /// this mode so a rollback (or a rebuilt backend after device loss)
    /// re-executes an epoch with *exactly* the schedule it had the first
    /// time.
    pub fn with_epoch_seed(mut self, seed: u64) -> Self {
        self.epoch_seed = Some(seed);
        self
    }

    /// Runs one block's SGD updates with batch-Hogwild! semantics confined
    /// to the block's coordinate window.
    fn execute_block(
        &mut self,
        id: BlockId,
        epoch: u32,
        gamma: f32,
        lambda: f32,
        model: &mut EngineModel<E>,
    ) -> u64 {
        let samples = self.grid.block(id);
        if samples.is_empty() {
            return 0;
        }
        // Materialise the block as a COO window in *global* coordinates:
        // the engine updates P/Q rows directly, mirroring the device-side
        // segments being written back (§6.1).
        let mut block = CooMatrix::with_capacity(self.data.rows(), self.data.cols(), samples.len());
        for &s in samples {
            let e = self.data.get(s);
            block.push(e.u, e.v, e.r);
        }
        let workers = (self.workers_per_gpu as usize).min(samples.len().max(1));
        let mut stream = BatchHogwildStream::new(block.nnz(), workers, self.batch as usize);
        stream.begin_epoch(epoch);
        let stats = stale_additive_epoch(&block, model.view(), &mut stream, gamma, lambda);
        stats.updates
    }
}

impl<E: Element> EpochBackend<E> for PartitionedBackend<'_, E> {
    fn run_epoch(
        &mut self,
        epoch: u32,
        gamma: f32,
        lambda: f32,
        model: &mut EngineModel<E>,
    ) -> EpochOutcome {
        let schedule = match self.epoch_seed {
            Some(seed) => {
                let mut rng = ChaCha8Rng::seed_from_u64(
                    seed ^ (epoch as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                schedule_epoch(&self.grid, self.gpus, &mut rng)
            }
            None => schedule_epoch(&self.grid, self.gpus, &mut self.rng),
        };

        // --- Convergence: execute every block's updates (wave by wave;
        // independence makes program order exact).
        let mut stats = EpochStats::default();
        for wave in &schedule.waves {
            for block_id in wave.iter().flatten() {
                stats.updates += self.execute_block(*block_id, epoch, gamma, lambda, model);
            }
        }

        // --- Timing: per-GPU pipeline of its assigned blocks.
        let timing = epoch_timing(
            &schedule.waves,
            &self.grid,
            self.gpus,
            self.workers_per_gpu,
            self.overlap,
            &self.cost,
            self.gpu,
            self.link,
        );
        EpochOutcome {
            stats,
            backend_seconds: Some(timing.seconds),
            timing: Some(timing),
        }
    }

    fn workers(&self) -> u32 {
        self.gpus * self.workers_per_gpu
    }

    fn name(&self) -> &'static str {
        "partitioned"
    }
}

/// Computes a partitioned epoch's simulated time: each GPU pipelines its
/// block sequence (H2D block+segments, compute, D2H segments); the epoch
/// ends when the slowest GPU finishes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn epoch_timing(
    waves: &[Vec<Option<BlockId>>],
    grid: &Grid,
    gpus: u32,
    workers_per_gpu: u32,
    overlap: bool,
    cost: &SgdUpdateCost,
    gpu: &GpuSpec,
    link: &LinkSpec,
) -> EpochTiming {
    let elem_bytes = cost.precision.bytes() as f64;
    let k = cost.k as f64;
    let mut worst = EpochTiming {
        seconds: 0.0,
        compute_seconds: 0.0,
        transfer_seconds: 0.0,
        idle_slots: 0,
    };
    for g in 0..gpus as usize {
        let jobs: Vec<BlockJob> = waves
            .iter()
            .filter_map(|wave| wave[g])
            .map(|id| {
                let samples = grid.block(id).len() as f64;
                let seg_bytes = (grid.row_range(id.bi).len() as f64
                    + grid.col_range(id.bj).len() as f64)
                    * k
                    * elem_bytes;
                BlockJob {
                    h2d_bytes: samples * 12.0 + seg_bytes,
                    compute_bytes: samples * cost.bytes() as f64,
                    d2h_bytes: seg_bytes,
                }
            })
            .collect();
        let result = if overlap {
            overlapped(&jobs, gpu, link, workers_per_gpu)
        } else {
            serial(&jobs, gpu, link, workers_per_gpu)
        };
        if result.makespan > worst.seconds {
            worst.seconds = result.makespan;
            worst.compute_seconds = result.compute_time;
            worst.transfer_seconds = result.transfer_time;
        }
    }
    worst.idle_slots = waves
        .iter()
        .flat_map(|w| w.iter())
        .filter(|b| b.is_none())
        .count();
    // Inter-GPU synchronisation: segments exchanged through host memory at
    // wave boundaries when more than one GPU runs (the sub-linear-scaling
    // cost the paper reports in §7.7).
    if gpus > 1 {
        worst.seconds += waves.len() as f64 * link.latency_s * gpus as f64;
    }
    EpochTiming { ..worst }
}
