//! The layered training engine.
//!
//! The paper's thesis is that SGD-MF performance decomposes into
//! independent, composable choices. This module is that decomposition as
//! an architecture — one epoch loop, four pluggable layers:
//!
//! | Layer | Trait | Chooses | Paper |
//! |-------|-------|---------|-------|
//! | Scheduling | [`crate::sched::UpdateStream`] | which sample next, per worker | §5 |
//! | Execution | [`ExecEngine`] | how updates touch the model | §3, Alg. 1 |
//! | Time | [`TimeDomain`] | what an epoch costs on a clock | §2.3, Eq. 5/7 |
//! | Observation | [`EpochObserver`] | metrics, divergence, checkpoints | §7 |
//!
//! [`EpochPipeline::run`] drives an [`EpochBackend`] (stream-fed
//! single-device, or §6's partitioned multi-GPU) for up to `epochs`
//! epochs: learning rate → backend → time domain → RMSE eval → trace
//! point → observers. `solver::train`, `multi_gpu::train_partitioned`,
//! `bias::train_biased`, and the `cumf-baselines` solvers are all thin
//! clients of this one loop, so previously-impossible combinations
//! (biased + partitioned, FP16 + threaded Hogwild!) are plain
//! configuration.

pub mod backend;
pub mod checkpoint;
pub mod exec;
pub mod model;
pub mod observer;
pub mod time;

pub use backend::{EpochBackend, EpochOutcome, PartitionedBackend, StreamBackend};
pub use checkpoint::{load_checkpoint, save_checkpoint, ResumeState};
pub use exec::{
    engine_for, sequential_epoch, stale_additive_epoch, threaded_epoch, ExecEngine,
    SequentialEngine, StaleAdditiveEngine, ThreadedHogwildEngine,
};
pub use model::{BiasTerms, EngineModel, ModelView};
pub use observer::{
    Checkpointer, DivergenceGuard, EpochCtx, EpochObserver, ObsProbes, PipelineControl,
};
pub use time::{
    BackendTime, FixedPerEpoch, ModelTime, NoSimTime, SimExecutorTime, TimeDomain, TimeModel,
    WallClockTime,
};

use cumf_data::CooMatrix;

use crate::concurrent::EpochStats;
use crate::feature::Element;
use crate::lrate::{LearningRate, Schedule};
use crate::metrics::{Trace, TracePoint};
use crate::multi_gpu::EpochTiming;

/// Compact end-of-run summary, also mirrored into the observability
/// registry (`cumf_solver_run_*` series) when the pipeline returns.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Scheduling policy / run label.
    pub scheme: &'static str,
    /// Epochs actually executed (early exit on divergence).
    pub epochs_run: u32,
    /// SGD updates applied across the run.
    pub total_updates: u64,
    /// Test RMSE after the last executed epoch (NaN when no epoch ran).
    pub final_rmse: f64,
    /// Host wall-clock seconds spent in the training loop.
    pub wall_seconds: f64,
    /// Simulated seconds, when a machine-time domain was attached (else 0).
    pub sim_seconds: f64,
    /// Updates per wall-clock second (0 when no time elapsed).
    pub updates_per_wall_sec: f64,
    /// True if the run hit the divergence ceiling.
    pub diverged: bool,
}

impl TrainReport {
    /// Mirrors the snapshot into the global observability registry.
    fn publish(&self) {
        cumf_obs::counter("cumf_solver_runs_total", "Training runs completed").inc();
        cumf_obs::gauge(
            "cumf_solver_run_wall_seconds",
            "Wall-clock seconds of the most recent training run",
        )
        .set(self.wall_seconds);
        cumf_obs::gauge(
            "cumf_solver_run_sim_seconds",
            "Simulated seconds of the most recent training run",
        )
        .set(self.sim_seconds);
        cumf_obs::gauge(
            "cumf_solver_run_updates_per_sec",
            "Updates per wall-clock second of the most recent training run",
        )
        .set(self.updates_per_wall_sec);
        cumf_obs::gauge(
            "cumf_solver_run_final_rmse",
            "Final test RMSE of the most recent training run",
        )
        .set(self.final_rmse);
    }
}

/// Everything a finished (or aborted) pipeline run produced.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// Per-epoch convergence trace (includes resumed-from epochs).
    pub trace: Trace,
    /// Per-epoch execution statistics (this invocation's epochs only).
    pub epoch_stats: Vec<EpochStats>,
    /// Per-epoch timing breakdowns, for backends that produce them.
    pub timings: Vec<EpochTiming>,
    /// End-of-run summary snapshot.
    pub report: TrainReport,
    /// True if an observer stopped the run flagging divergence.
    pub diverged: bool,
}

/// The shared epoch loop every training path runs through.
#[derive(Debug, Clone)]
pub struct EpochPipeline {
    /// Run label (scheduling-policy or solver name) for spans and reports.
    pub label: &'static str,
    /// Epochs (full passes) to run.
    pub epochs: u32,
    /// Regularisation λ handed to the backend.
    pub lambda: f32,
    /// Learning-rate schedule.
    pub schedule: Schedule,
}

impl EpochPipeline {
    /// Drives `backend` for up to `self.epochs` epochs, evaluating test
    /// RMSE after each and consulting `observers` for early exit. Pass a
    /// [`ResumeState`] (from [`load_checkpoint`]) to continue a prior run;
    /// deterministic streams make the result bit-identical to never having
    /// stopped.
    pub fn run<E: Element>(
        &self,
        model: &mut EngineModel<E>,
        backend: &mut dyn EpochBackend<E>,
        time: &mut dyn TimeDomain,
        observers: &mut [&mut dyn EpochObserver<E>],
        test: &CooMatrix,
        resume: Option<ResumeState>,
    ) -> PipelineRun {
        let mut lr = LearningRate::new(self.schedule.clone());
        let mut trace = Trace::default();
        let mut updates = 0u64;
        let mut seconds = 0.0f64;
        let mut start_epoch = 0u32;
        if let Some(state) = resume {
            if let Some(lr_state) = state.lr {
                lr.restore(lr_state);
            }
            trace = state.trace;
            updates = state.updates;
            seconds = state.sim_seconds;
            start_epoch = state.next_epoch;
        }
        let mut epoch_stats = Vec::with_capacity(self.epochs.saturating_sub(start_epoch) as usize);
        let mut timings = Vec::new();
        let mut diverged = false;

        let _run_span = cumf_obs::span("solver", format!("train:{}", self.label));
        let run_t0 = std::time::Instant::now();

        for epoch in start_epoch..self.epochs {
            let mut epoch_span = cumf_obs::span("solver", "epoch");
            let gamma = lr.gamma(epoch);
            let epoch_t0 = std::time::Instant::now();
            let outcome = backend.run_epoch(epoch, gamma, self.lambda, model);
            let epoch_wall = epoch_t0.elapsed().as_secs_f64();
            updates += outcome.stats.updates;
            let sim_epoch = time.epoch_seconds(&outcome, backend.workers(), epoch_wall);
            seconds += sim_epoch;
            let eval_span = cumf_obs::span("solver", "rmse_eval");
            let eval_t0 = std::time::Instant::now();
            let test_rmse = model.rmse(test);
            let eval_wall = eval_t0.elapsed().as_secs_f64();
            drop(eval_span);
            lr.observe(test_rmse);
            trace.push(TracePoint {
                epoch: epoch + 1,
                updates,
                rmse: test_rmse,
                seconds,
            });
            epoch_span.set_arg("epoch", (epoch + 1) as f64);
            epoch_span.set_arg("updates", outcome.stats.updates as f64);
            epoch_span.set_arg("rounds", outcome.stats.rounds as f64);
            epoch_span.set_arg("rmse", test_rmse);
            epoch_span.set_arg("gamma", gamma as f64);
            let ctx = EpochCtx {
                epoch,
                gamma,
                stats: &outcome.stats,
                rmse: test_rmse,
                sim_epoch_seconds: sim_epoch,
                epoch_wall_seconds: epoch_wall,
                eval_wall_seconds: eval_wall,
                total_updates: updates,
                total_sim_seconds: seconds,
                trace: &trace,
                lr: lr.state(),
            };
            let mut stop = false;
            for obs in observers.iter_mut() {
                if let PipelineControl::Stop { diverged: d } = obs.on_epoch_end(&ctx, model) {
                    stop = true;
                    diverged |= d;
                }
            }
            if let Some(t) = outcome.timing {
                timings.push(t);
            }
            epoch_stats.push(outcome.stats);
            if stop {
                break;
            }
        }

        let wall_seconds = run_t0.elapsed().as_secs_f64();
        let report = TrainReport {
            scheme: self.label,
            epochs_run: trace.points.len() as u32,
            total_updates: updates,
            final_rmse: trace.final_rmse().unwrap_or(f64::NAN),
            wall_seconds,
            sim_seconds: seconds,
            updates_per_wall_sec: if wall_seconds > 0.0 {
                updates as f64 / wall_seconds
            } else {
                0.0
            },
            diverged,
        };
        report.publish();

        PipelineRun {
            trace,
            epoch_stats,
            timings,
            report,
            diverged,
        }
    }
}
