//! Time-domain layer: what one epoch *costs* on a clock.
//!
//! Training produces a convergence trace (RMSE per epoch); every figure
//! in the paper plots it against some notion of time. A [`TimeDomain`]
//! converts an epoch's [`EpochOutcome`] into seconds on its clock:
//!
//! * [`NoSimTime`] — no clock; trace seconds stay zero;
//! * [`WallClockTime`] — the host's measured wall time;
//! * [`ModelTime`] — the bandwidth-law [`TimeModel`] (Eq. 5/7: rounds ×
//!   bytes-per-update × workers ÷ bandwidth);
//! * [`SimExecutorTime`] — throughput from the `cumf-gpu-sim`
//!   discrete-event executor, including scheduler contention;
//! * [`BackendTime`] — the backend's own clock (the multi-GPU
//!   transfer/compute pipeline of §6.2);
//! * [`FixedPerEpoch`] — a constant per epoch (the baselines' analytic
//!   epoch costs).

use cumf_gpu_sim::{simulate_throughput, SchedulerModel, ThroughputConfig};

use crate::concurrent::EpochStats;
use crate::SgdUpdateCost;

use super::backend::EpochOutcome;

/// Converts epoch round counts into simulated seconds on a modelled
/// machine: one round = one update per worker at its fair bandwidth share.
#[derive(Debug, Clone)]
pub struct TimeModel {
    /// Per-update memory traffic model.
    pub cost: SgdUpdateCost,
    /// Total effective bandwidth of the worker ensemble, bytes/s.
    pub total_bandwidth: f64,
    /// Fixed per-epoch overhead (kernel launches, scheduling), seconds.
    pub epoch_overhead: f64,
}

impl TimeModel {
    /// Seconds one epoch takes given its observed round structure.
    pub fn epoch_seconds(&self, stats: &EpochStats, workers: u32) -> f64 {
        let per_round = self.cost.bytes() as f64 * workers as f64 / self.total_bandwidth;
        self.epoch_overhead + stats.rounds as f64 * per_round
    }
}

/// A clock pricing epochs for the convergence trace.
pub trait TimeDomain {
    /// Seconds epoch took on this clock. `workers` comes from the backend;
    /// `wall_seconds` is the measured host time of the update phase.
    fn epoch_seconds(&mut self, outcome: &EpochOutcome, workers: u32, wall_seconds: f64) -> f64;

    /// Clock name for reports.
    fn name(&self) -> &'static str;
}

/// No simulated clock: every epoch costs zero seconds (trace plots RMSE
/// against epochs/updates only).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoSimTime;

impl TimeDomain for NoSimTime {
    fn epoch_seconds(&mut self, _outcome: &EpochOutcome, _workers: u32, _wall: f64) -> f64 {
        0.0
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

/// Host wall-clock time of the update phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct WallClockTime;

impl TimeDomain for WallClockTime {
    fn epoch_seconds(&mut self, _outcome: &EpochOutcome, _workers: u32, wall: f64) -> f64 {
        wall
    }

    fn name(&self) -> &'static str {
        "wall-clock"
    }
}

/// The bandwidth-law machine model ([`TimeModel`]) as a time domain.
#[derive(Debug, Clone)]
pub struct ModelTime(pub TimeModel);

impl TimeDomain for ModelTime {
    fn epoch_seconds(&mut self, outcome: &EpochOutcome, workers: u32, _wall: f64) -> f64 {
        self.0.epoch_seconds(&outcome.stats, workers)
    }

    fn name(&self) -> &'static str {
        "time-model"
    }
}

/// The backend's own clock: trusts [`EpochOutcome::backend_seconds`]
/// (the multi-GPU pipeline model), zero when the backend has none.
#[derive(Debug, Clone, Copy, Default)]
pub struct BackendTime;

impl TimeDomain for BackendTime {
    fn epoch_seconds(&mut self, outcome: &EpochOutcome, _workers: u32, _wall: f64) -> f64 {
        outcome.backend_seconds.unwrap_or(0.0)
    }

    fn name(&self) -> &'static str {
        "backend"
    }
}

/// A fixed cost per epoch (analytic epoch models of the baselines).
#[derive(Debug, Clone, Copy)]
pub struct FixedPerEpoch(pub f64);

impl TimeDomain for FixedPerEpoch {
    fn epoch_seconds(&mut self, _outcome: &EpochOutcome, _workers: u32, _wall: f64) -> f64 {
        self.0
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

/// Prices epochs with the `cumf-gpu-sim` discrete-event executor: one
/// throughput simulation (lazy, on the first epoch) yields a sustained
/// updates/s including scheduler contention; each epoch then costs
/// `updates ÷ updates_per_sec`.
#[derive(Debug, Clone)]
pub struct SimExecutorTime {
    /// Simulated parallel workers.
    pub workers: u32,
    /// Total effective bandwidth, bytes/s.
    pub total_bandwidth: f64,
    /// Per-update cost model.
    pub cost: SgdUpdateCost,
    /// Scheduler model (the contention source).
    pub scheduler: SchedulerModel,
    ups: Option<f64>,
}

impl SimExecutorTime {
    /// Builds the domain; the DES run happens on first use.
    pub fn new(
        workers: u32,
        total_bandwidth: f64,
        cost: SgdUpdateCost,
        scheduler: SchedulerModel,
    ) -> Self {
        SimExecutorTime {
            workers,
            total_bandwidth,
            cost,
            scheduler,
            ups: None,
        }
    }
}

impl TimeDomain for SimExecutorTime {
    fn epoch_seconds(&mut self, outcome: &EpochOutcome, _workers: u32, _wall: f64) -> f64 {
        if self.ups.is_none() {
            let result = simulate_throughput(&ThroughputConfig {
                workers: self.workers,
                total_bandwidth: self.total_bandwidth,
                cost: self.cost,
                scheduler: self.scheduler,
                total_updates: outcome.stats.updates.max(1),
            });
            self.ups = Some(result.updates_per_sec);
        }
        outcome.stats.updates as f64 / self.ups.expect("seeded above")
    }

    fn name(&self) -> &'static str {
        "sim-executor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_gpu_sim::TITAN_X_MAXWELL;

    fn outcome(updates: u64, rounds: u64, backend: Option<f64>) -> EpochOutcome {
        EpochOutcome {
            stats: EpochStats {
                updates,
                rounds,
                ..Default::default()
            },
            backend_seconds: backend,
            timing: None,
        }
    }

    #[test]
    fn model_time_matches_time_model() {
        let tm = TimeModel {
            cost: SgdUpdateCost::cumf(16),
            total_bandwidth: 1e9,
            epoch_overhead: 0.001,
        };
        let o = outcome(100, 101, None);
        let mut domain = ModelTime(tm.clone());
        assert_eq!(
            domain.epoch_seconds(&o, 1, 0.5),
            tm.epoch_seconds(&o.stats, 1)
        );
    }

    #[test]
    fn trivial_domains() {
        let o = outcome(10, 10, Some(2.5));
        assert_eq!(NoSimTime.epoch_seconds(&o, 4, 1.0), 0.0);
        assert_eq!(WallClockTime.epoch_seconds(&o, 4, 1.0), 1.0);
        assert_eq!(BackendTime.epoch_seconds(&o, 4, 1.0), 2.5);
        assert_eq!(
            BackendTime.epoch_seconds(&outcome(10, 10, None), 4, 1.0),
            0.0
        );
        assert_eq!(FixedPerEpoch(0.25).epoch_seconds(&o, 4, 1.0), 0.25);
    }

    #[test]
    fn sim_executor_time_is_proportional_to_updates() {
        let workers = 64;
        let mut domain = SimExecutorTime::new(
            workers,
            TITAN_X_MAXWELL.effective_bw(workers),
            SgdUpdateCost::cumf(16),
            SchedulerModel::BatchHogwild {
                batch: 256,
                per_batch_overhead_s: 50e-9,
            },
        );
        let t1 = domain.epoch_seconds(&outcome(10_000, 160, None), workers, 0.0);
        let t2 = domain.epoch_seconds(&outcome(20_000, 320, None), workers, 0.0);
        assert!(t1 > 0.0);
        assert!((t2 / t1 - 2.0).abs() < 1e-9, "t2/t1 = {}", t2 / t1);
    }
}
