//! Model layer of the engine: the trainable state every backend mutates.
//!
//! [`EngineModel`] bundles the two factor matrices of the paper's model
//! (`r̂ = p_u · q_v`, §2.1) with the optional bias terms of the Koren-style
//! extension (`r̂ = μ + b_u + b_v + p_u · q_v`). Every training path —
//! single-GPU, partitioned multi-GPU, baselines — operates on this one
//! struct, which is what makes previously-impossible combinations (e.g.
//! biased + partitioned) plain configuration.

use cumf_data::CooMatrix;
use cumf_rng::ChaCha8Rng;

use crate::feature::{Element, FactorMatrix};
use crate::kernel::dot;
use crate::metrics::rmse;

/// The bias terms of a biased factorization: global mean `μ`, per-user
/// `b_u`, per-item `b_v`.
#[derive(Debug, Clone, PartialEq)]
pub struct BiasTerms {
    /// Global rating mean μ.
    pub mu: f32,
    /// Per-user biases b_u.
    pub user: Vec<f32>,
    /// Per-item biases b_v.
    pub item: Vec<f32>,
}

/// The trainable state of a run: factor matrices plus optional biases.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineModel<E: Element> {
    /// Row (user) factors, m×k.
    pub p: FactorMatrix<E>,
    /// Column (item) factors, n×k.
    pub q: FactorMatrix<E>,
    /// Bias terms; `None` trains the paper's bias-free model.
    pub bias: Option<BiasTerms>,
}

/// A mutable borrow of an [`EngineModel`] handed to the execution engine
/// for one epoch (split borrows let the engine update P and Q rows
/// independently).
#[derive(Debug)]
pub struct ModelView<'a, E: Element> {
    /// Row factors.
    pub p: &'a mut FactorMatrix<E>,
    /// Column factors.
    pub q: &'a mut FactorMatrix<E>,
    /// Bias terms when training the biased model.
    pub bias: Option<&'a mut BiasTerms>,
}

impl<E: Element> EngineModel<E> {
    /// Bundles existing factors into a bias-free model.
    pub fn unbiased(p: FactorMatrix<E>, q: FactorMatrix<E>) -> Self {
        assert_eq!(p.k(), q.k(), "P and Q must share the feature dimension");
        EngineModel { p, q, bias: None }
    }

    /// Random bias-free initialisation matching the single-GPU solver: P
    /// drawn first, then Q, both `U(0, √(1/k))` from `rng`.
    pub fn init_unbiased(train: &CooMatrix, k: u32, rng: &mut ChaCha8Rng) -> Self {
        let p = FactorMatrix::random_init(train.rows(), k, rng);
        let q = FactorMatrix::random_init(train.cols(), k, rng);
        EngineModel { p, q, bias: None }
    }

    /// Random biased initialisation: `μ` is the training mean, user biases
    /// start at zero, and item biases are pre-set to `-0.25` — the
    /// positive-uniform factor init predicts `μ + ~0.25` on average, so
    /// recentring makes early epochs start near the mean.
    pub fn init_biased(train: &CooMatrix, k: u32, rng: &mut ChaCha8Rng) -> Self {
        let mu = train.mean_rating() as f32;
        let p = FactorMatrix::random_init(train.rows(), k, rng);
        let q = FactorMatrix::random_init(train.cols(), k, rng);
        let init_dot = 0.25f32;
        EngineModel {
            p,
            q,
            bias: Some(BiasTerms {
                mu,
                user: vec![0.0; train.rows() as usize],
                item: vec![-init_dot; train.cols() as usize],
            }),
        }
    }

    /// A split-borrow view for one epoch of execution.
    pub fn view(&mut self) -> ModelView<'_, E> {
        ModelView {
            p: &mut self.p,
            q: &mut self.q,
            bias: self.bias.as_mut(),
        }
    }

    /// Predicted rating for `(u, v)` — `p_u · q_v`, plus `μ + b_u + b_v`
    /// when biases are present.
    pub fn predict(&self, u: u32, v: u32) -> f32 {
        let interaction = dot(self.p.row(u), self.q.row(v));
        match &self.bias {
            None => interaction,
            Some(b) => b.mu + b.user[u as usize] + b.item[v as usize] + interaction,
        }
    }

    /// Number of non-finite (NaN/Inf) values anywhere in the trainable
    /// state — factors and, when present, bias terms. A healthy model is
    /// always 0; the supervisor's post-epoch scan uses a positive count as
    /// the NaN-storm detection signal.
    pub fn non_finite_count(&self) -> usize {
        let mut n = self.p.non_finite_count() + self.q.non_finite_count();
        if let Some(b) = &self.bias {
            if !b.mu.is_finite() {
                n += 1;
            }
            n += b.user.iter().filter(|x| !x.is_finite()).count();
            n += b.item.iter().filter(|x| !x.is_finite()).count();
        }
        n
    }

    /// Test RMSE of the model over `data` (0.0 for an empty set).
    pub fn rmse(&self, data: &CooMatrix) -> f64 {
        match &self.bias {
            None => rmse(data, &self.p, &self.q),
            Some(b) => {
                if data.is_empty() {
                    return 0.0;
                }
                let mut se = 0.0f64;
                for e in data.iter() {
                    let pred = b.mu
                        + b.user[e.u as usize]
                        + b.item[e.v as usize]
                        + dot(self.p.row(e.u), self.q.row(e.v));
                    let err = (e.r - pred) as f64;
                    se += err * err;
                }
                (se / data.nnz() as f64).sqrt()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_rng::SeedableRng;

    fn tiny() -> CooMatrix {
        let mut coo = CooMatrix::new(4, 3);
        coo.push(0, 0, 3.0);
        coo.push(1, 1, 4.0);
        coo.push(2, 2, 5.0);
        coo
    }

    #[test]
    fn init_unbiased_matches_solver_rng_order() {
        let data = tiny();
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let model = EngineModel::<f32>::init_unbiased(&data, 4, &mut a);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let p: FactorMatrix<f32> = FactorMatrix::random_init(4, 4, &mut b);
        let q: FactorMatrix<f32> = FactorMatrix::random_init(3, 4, &mut b);
        assert_eq!(model.p, p);
        assert_eq!(model.q, q);
        assert!(model.bias.is_none());
    }

    #[test]
    fn init_biased_sets_mean_and_item_offset() {
        let data = tiny();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let model = EngineModel::<f32>::init_biased(&data, 2, &mut rng);
        let bias = model.bias.as_ref().unwrap();
        assert!((bias.mu - 4.0).abs() < 1e-6);
        assert!(bias.user.iter().all(|&b| b == 0.0));
        assert!(bias.item.iter().all(|&b| b == -0.25));
    }

    #[test]
    fn unbiased_rmse_delegates_to_metrics() {
        let data = tiny();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let model = EngineModel::<f32>::init_unbiased(&data, 3, &mut rng);
        assert_eq!(model.rmse(&data), rmse(&data, &model.p, &model.q));
    }

    #[test]
    fn biased_predict_composes_all_terms() {
        let model = EngineModel {
            p: FactorMatrix::<f32>::from_f32_slice(2, 2, &[1.0, 0.0, 0.0, 1.0]),
            q: FactorMatrix::<f32>::from_f32_slice(1, 2, &[2.0, 4.0]),
            bias: Some(BiasTerms {
                mu: 3.0,
                user: vec![0.5, -0.5],
                item: vec![0.25],
            }),
        };
        assert!((model.predict(0, 0) - 5.75).abs() < 1e-6);
        assert!((model.predict(1, 0) - 6.75).abs() < 1e-6);
    }
}
