//! # cumf-core — cuMF_SGD in Rust
//!
//! The primary contribution of *CuMF_SGD: Parallelized Stochastic Gradient
//! Descent for Matrix Factorization on GPUs* (HPDC'17), reproduced from
//! scratch:
//!
//! * [`half`] — IEEE 754 binary16 storage (§4's half-precision feature
//!   matrices), implemented from scratch;
//! * [`feature`] — factor matrices generic over storage precision;
//! * [`kernel`] — the SGD update (Algorithm 1) in scalar and ILP-unrolled
//!   forms, plus ADAGRAD state;
//! * [`lrate`] — learning-rate schedules, including the paper's Eq. 9;
//! * [`sched`] — the scheduling-policy zoo: serial, Hogwild!,
//!   batch-Hogwild! (§5.1), wavefront-update (§5.2), and LIBMF's global
//!   table, all as deterministic update streams;
//! * [`concurrent`] — execution engines: a deterministic round-based
//!   Hogwild! conflict engine (stale reads, additive commits) and a real
//!   OS-thread lock-free executor;
//! * [`engine`] — the layered epoch pipeline (model / execution / time /
//!   observers) that every training path in the workspace runs through;
//! * [`solver`] — the single-GPU training loop producing convergence
//!   traces;
//! * [`stale`] — the bounded-staleness certifier: every lock-free update
//!   path lifted into an asynchrony IR, its worst-case per-row staleness
//!   τ bounded, and the lr·τ safety condition checked per run;
//! * [`partition`] — §6.1's i×j workload grid, Eq. 6 independence, the
//!   §7.5 convergence constraints, and Fig 15's feasible-order analysis;
//! * [`multi_gpu`] — §6's staged multi-GPU solver with transfer/compute
//!   overlap;
//! * [`faults`] — deterministic fault injection (device loss, transfer
//!   corruption/stalls, NaN storms) and the self-healing training
//!   supervisor with retry, rollback, and graceful-degradation policies;
//! * [`metrics`] — test RMSE, Eq. 2 loss, Eq. 7 throughput, traces.
//!
//! ## Quick start
//!
//! ```
//! use cumf_core::solver::{train, Scheme, SolverConfig};
//! use cumf_data::synth::{generate, SynthConfig};
//!
//! let data = generate(&SynthConfig {
//!     m: 200, n: 150, k_true: 4, train_samples: 8_000, test_samples: 800,
//!     ..SynthConfig::default()
//! });
//! let config = SolverConfig::new(6, Scheme::BatchHogwild { workers: 8, batch: 64 });
//! let result = train::<f32>(&data.train, &data.test, &config, None);
//! assert!(result.trace.final_rmse().unwrap() < 1.0);
//! ```

#![warn(missing_docs)]

pub mod bias;
pub mod concurrent;
pub mod engine;
pub mod faults;
pub mod feature;
pub mod half;
pub mod kernel;
pub mod lrate;
pub mod metrics;
pub mod model_io;
pub mod multi_gpu;
pub mod partition;
#[cfg(feature = "sanitize")]
pub mod sanitize;
pub mod sched;
pub mod solver;
pub mod stale;

pub use bias::{train_biased, BiasedConfig, BiasedModel, BiasedResult};
pub use concurrent::{
    AtomicFactors, EpochStats, ExecMode, ExecParams, StripedFactors, DEFAULT_THREAD_BATCH,
};
pub use engine::{
    BiasTerms, EngineModel, EpochBackend, EpochObserver, EpochPipeline, ExecEngine, PipelineRun,
    ResumeState, TimeDomain, TrainReport,
};
pub use faults::{
    run_chaos, ChaosOptions, ChaosReport, FaultKind, FaultPlan, RecoveryKind, RecoveryLog,
    RetryPolicy, SupervisedResult, SupervisorConfig, TrainError, TrainSupervisor,
};
pub use feature::{Element, FactorMatrix};
pub use half::F16;
pub use kernel::{precision_of, CostCert, CostCertStatus, KernelTraffic};
pub use lrate::{LearningRate, LrState, Schedule};
pub use metrics::{rmse, updates_per_sec, Trace, TracePoint};
pub use model_io::{load_model, load_model_file, save_model, save_model_file, Model};
pub use multi_gpu::{train_partitioned, MultiGpuConfig, MultiGpuResult};
pub use partition::{
    count_feasible_orders, schedule_epoch, segment_of, segment_range, BlockId, Grid, WaveSchedule,
};
pub use sched::{certify, resolve_exec_mode, ConflictCert, ConflictWitness, Verdict};
pub use solver::{train, Scheme, SolverConfig, TimeModel, TrainResult};
pub use stale::{
    certify_staleness, resolve_stale_mode, staleness_bound, Footprint, PathSpec, StaleCert,
    StaleVerdict, StaleWitness, SyncEdge, SyncKind, UpdatePathAnno,
};

/// Canonical re-export of the per-update memory cost model: core code and
/// downstream crates import `SgdUpdateCost` from exactly one path per
/// crate root (it is defined in `cumf-gpu-sim`'s kernel module).
pub use cumf_gpu_sim::SgdUpdateCost;
