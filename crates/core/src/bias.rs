//! Biased matrix factorization — the standard recommender extension of
//! the paper's model family (§2.1 cites Koren et al., whose production
//! model is `r̂ = μ + b_u + b_v + p_u·q_v`).
//!
//! Global mean `μ`, per-user bias `b_u` and per-item bias `b_v` absorb
//! rating-scale effects so the factors model *interactions* only — on
//! offset-heavy data this reaches the noise floor with a smaller rank than
//! the bias-free model. The SGD rules extend Algorithm 1 with
//!
//! ```text
//! b_u += γ (err − λ b_u)
//! b_v += γ (err − λ b_v)
//! ```
//!
//! The update rules themselves live in the engine's execution layer
//! ([`crate::engine::exec`], biased paths); this module is a thin client
//! wiring batch-Hogwild! scheduling and a sequential engine into the
//! shared [`EpochPipeline`].

use cumf_rng::ChaCha8Rng;
use cumf_rng::SeedableRng;

use cumf_data::CooMatrix;

use crate::engine::{
    DivergenceGuard, EngineModel, EpochObserver, EpochPipeline, NoSimTime, SequentialEngine,
    StreamBackend,
};
use crate::feature::{Element, FactorMatrix};
use crate::kernel::dot;
use crate::lrate::Schedule;
use crate::metrics::Trace;
use crate::sched::BatchHogwildStream;

/// A biased factorization model.
#[derive(Debug, Clone, PartialEq)]
pub struct BiasedModel<E: Element> {
    /// Global rating mean μ.
    pub mu: f32,
    /// Per-user biases b_u.
    pub user_bias: Vec<f32>,
    /// Per-item biases b_v.
    pub item_bias: Vec<f32>,
    /// Row factors.
    pub p: FactorMatrix<E>,
    /// Column factors.
    pub q: FactorMatrix<E>,
}

impl<E: Element> BiasedModel<E> {
    /// Predicted rating `μ + b_u + b_v + p_u · q_v`.
    pub fn predict(&self, u: u32, v: u32) -> f32 {
        self.mu
            + self.user_bias[u as usize]
            + self.item_bias[v as usize]
            + dot(self.p.row(u), self.q.row(v))
    }

    /// Test RMSE of the biased model.
    pub fn rmse(&self, data: &CooMatrix) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let mut se = 0.0f64;
        for e in data.iter() {
            let err = (e.r - self.predict(e.u, e.v)) as f64;
            se += err * err;
        }
        (se / data.nnz() as f64).sqrt()
    }
}

/// Configuration for biased training.
#[derive(Debug, Clone)]
pub struct BiasedConfig {
    /// Feature dimension of the interaction factors.
    pub k: u32,
    /// Regularisation λ (factors and biases).
    pub lambda: f32,
    /// Learning-rate schedule.
    pub schedule: Schedule,
    /// Epochs.
    pub epochs: u32,
    /// Batch-Hogwild! workers.
    pub workers: u32,
    /// Batch-Hogwild! fetch size.
    pub batch: u32,
    /// RNG seed.
    pub seed: u64,
}

impl BiasedConfig {
    /// Sensible defaults.
    pub fn new(k: u32) -> Self {
        BiasedConfig {
            k,
            lambda: 0.02,
            schedule: Schedule::NomadDecay {
                alpha: 0.1,
                beta: 0.1,
            },
            epochs: 20,
            workers: 8,
            batch: 256,
            seed: 42,
        }
    }
}

/// Result of biased training.
#[derive(Debug, Clone)]
pub struct BiasedResult<E: Element> {
    /// The trained model.
    pub model: BiasedModel<E>,
    /// Convergence trace.
    pub trace: Trace,
}

/// Trains the biased model with batch-Hogwild! scheduling (sequential
/// application — bias cells are tiny and extremely hot, so the biased
/// variant is typically run with conflict-free application).
pub fn train_biased<E: Element>(
    train: &CooMatrix,
    test: &CooMatrix,
    config: &BiasedConfig,
) -> BiasedResult<E> {
    assert!(!train.is_empty(), "training set is empty");
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut model: EngineModel<E> = EngineModel::init_biased(train, config.k, &mut rng);

    let mut backend = StreamBackend::new(
        train,
        Box::new(BatchHogwildStream::new(
            train.nnz(),
            config.workers as usize,
            config.batch as usize,
        )),
        Box::new(SequentialEngine),
        config.workers,
    );
    let mut time = NoSimTime;
    let mut guard = DivergenceGuard::non_finite_only();
    let mut observers: Vec<&mut dyn EpochObserver<E>> = vec![&mut guard];

    let pipeline = EpochPipeline {
        label: "biased",
        epochs: config.epochs,
        lambda: config.lambda,
        schedule: config.schedule.clone(),
    };
    let run = pipeline.run(
        &mut model,
        &mut backend,
        &mut time,
        &mut observers,
        test,
        None,
    );

    let bias = model.bias.expect("biased init always sets bias terms");
    BiasedResult {
        model: BiasedModel {
            mu: bias.mu,
            user_bias: bias.user,
            item_bias: bias.item,
            p: model.p,
            q: model.q,
        },
        trace: run.trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{train, Scheme, SolverConfig};
    use cumf_data::synth::{generate, SynthConfig};

    fn offset_heavy_dataset() -> cumf_data::synth::SynthDataset {
        generate(&SynthConfig {
            m: 400,
            n: 300,
            k_true: 4,
            train_samples: 25_000,
            test_samples: 2_500,
            noise_std: 0.1,
            row_skew: 0.4,
            col_skew: 0.4,
            rating_offset: 3.5, // strong scale offset: biases should shine
            seed: 91,
        })
    }

    #[test]
    fn biased_model_converges() {
        let d = offset_heavy_dataset();
        let r = train_biased::<f32>(&d.train, &d.test, &BiasedConfig::new(6));
        let final_rmse = r.trace.final_rmse().unwrap();
        assert!(final_rmse < 0.2, "biased model rmse {final_rmse}");
    }

    #[test]
    fn biases_accelerate_early_convergence_on_offset_data() {
        let d = offset_heavy_dataset();
        let biased = train_biased::<f32>(
            &d.train,
            &d.test,
            &BiasedConfig {
                epochs: 3,
                ..BiasedConfig::new(6)
            },
        );
        let mut plain_cfg = SolverConfig::new(
            6,
            Scheme::BatchHogwild {
                workers: 8,
                batch: 256,
            },
        );
        plain_cfg.epochs = 3;
        plain_cfg.lambda = 0.02;
        plain_cfg.schedule = Schedule::NomadDecay {
            alpha: 0.1,
            beta: 0.1,
        };
        let plain = train::<f32>(&d.train, &d.test, &plain_cfg, None);
        assert!(
            biased.trace.final_rmse().unwrap() < plain.trace.final_rmse().unwrap(),
            "biases should win the early epochs on offset-heavy data: {} vs {}",
            biased.trace.final_rmse().unwrap(),
            plain.trace.final_rmse().unwrap()
        );
    }

    #[test]
    fn predict_composes_all_terms() {
        let model = BiasedModel {
            mu: 3.0,
            user_bias: vec![0.5, -0.5],
            item_bias: vec![0.25],
            p: FactorMatrix::<f32>::from_f32_slice(2, 2, &[1.0, 0.0, 0.0, 1.0]),
            q: FactorMatrix::<f32>::from_f32_slice(1, 2, &[2.0, 4.0]),
        };
        // mu + bu + bv + p.q = 3 + 0.5 + 0.25 + 2 = 5.75
        assert!((model.predict(0, 0) - 5.75).abs() < 1e-6);
        // second user: 3 - 0.5 + 0.25 + 4 = 6.75
        assert!((model.predict(1, 0) - 6.75).abs() < 1e-6);
    }

    #[test]
    fn rmse_of_empty_test_is_zero() {
        let d = offset_heavy_dataset();
        let r = train_biased::<f32>(
            &d.train,
            &CooMatrix::new(d.train.rows(), d.train.cols()),
            &BiasedConfig {
                epochs: 1,
                ..BiasedConfig::new(4)
            },
        );
        assert_eq!(r.trace.final_rmse(), Some(0.0));
    }
}
