//! Concurrent-execution engines: how parallel SGD updates actually touch
//! the model.
//!
//! On a GPU, hundreds of thread blocks race on the feature matrices; on
//! this crate's single-core reproduction platform real threads cannot
//! produce representative races. We therefore execute schedules through a
//! deterministic **round-based conflict engine**:
//!
//! * In every round, each non-stalled worker receives one sample from the
//!   [`crate::sched::UpdateStream`].
//! * All workers *read* the factor rows as of the start of the round
//!   (stale reads — what racing Hogwild! workers observe).
//! * Each computes its SGD delta against that snapshot.
//! * All deltas are then *committed additively*.
//!
//! When two workers in a round share a row or column, both corrections are
//! applied even though each was computed assuming it acted alone — the
//! overshoot that makes Hogwild! diverge when `s` is *not* ≪ `min(m, n)`
//! (§7.5). When no collision occurs, a round is exactly equivalent to
//! sequential execution. Conflict-free policies (wavefront, LIBMF blocking)
//! can run in the cheaper [`ExecMode::Sequential`] mode, which the engine
//! verifies is collision-free as it goes.
//!
//! A `ThreadedHogwild` executor ([`threaded_hogwild_epoch`]) using real OS threads over atomic f32
//! cells is provided as well, for cross-validation on multi-core hosts.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;

use cumf_data::CooMatrix;

use crate::engine::model::ModelView;
use crate::feature::{Element, FactorMatrix};
use crate::sched::UpdateStream;

/// How parallel updates are applied to the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Apply each worker's update immediately, in worker order. Exact for
    /// conflict-free schedules; silently serialises racy ones.
    Sequential,
    /// Round-snapshot reads + additive commits: Hogwild! race semantics
    /// (stale gradients, double-applied corrections on collision).
    StaleAdditive,
    /// Real OS threads racing lock-free on atomic factor cells (ignores
    /// the stream's ordering; unsupported for the biased model).
    Threaded,
}

/// Statistics of one executed epoch.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EpochStats {
    /// SGD updates applied.
    pub updates: u64,
    /// Lockstep rounds the epoch needed (drives the simulated-time model:
    /// a stalled worker still burns a round slot).
    pub rounds: u64,
    /// Worker-round slots lost to stalls.
    pub stalls: u64,
    /// Rounds in which ≥ 2 workers touched the same P row.
    pub row_collisions: u64,
    /// Rounds in which ≥ 2 workers touched the same Q column.
    pub col_collisions: u64,
}

impl EpochStats {
    /// Fraction of worker-round slots that stalled.
    pub fn stall_fraction(&self) -> f64 {
        let slots = self.updates + self.stalls;
        if slots == 0 {
            0.0
        } else {
            self.stalls as f64 / slots as f64
        }
    }
}

/// Default consecutive-sample claim size for the threaded executors — the
/// paper's `f = 256` ([`crate::sched::BatchHogwildStream::DEFAULT_F`]).
pub const DEFAULT_THREAD_BATCH: usize = crate::sched::BatchHogwildStream::DEFAULT_F;

/// Execution knobs for [`run_epoch_with`] that are not part of the
/// scheduling policy itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecParams {
    /// Samples each OS thread claims per shared-counter grab in
    /// [`ExecMode::Threaded`] (ignored by the other modes).
    pub thread_batch: usize,
}

impl Default for ExecParams {
    fn default() -> Self {
        ExecParams {
            thread_batch: DEFAULT_THREAD_BATCH,
        }
    }
}

/// Runs one epoch of `stream` against `(p, q)` with learning rate `gamma`
/// and regularisation `lambda`. Thin compatibility wrapper over the
/// bias-capable epoch bodies in [`crate::engine::exec`], using the default
/// [`ExecParams`].
pub fn run_epoch<E: Element, S: UpdateStream + ?Sized>(
    data: &CooMatrix,
    p: &mut FactorMatrix<E>,
    q: &mut FactorMatrix<E>,
    stream: &mut S,
    gamma: f32,
    lambda: f32,
    mode: ExecMode,
) -> EpochStats {
    run_epoch_with(
        data,
        p,
        q,
        stream,
        gamma,
        lambda,
        mode,
        ExecParams::default(),
    )
}

/// [`run_epoch`] with explicit [`ExecParams`] — the configurable seam the
/// model checker and benches use to exercise small thread batches.
#[allow(clippy::too_many_arguments)]
pub fn run_epoch_with<E: Element, S: UpdateStream + ?Sized>(
    data: &CooMatrix,
    p: &mut FactorMatrix<E>,
    q: &mut FactorMatrix<E>,
    stream: &mut S,
    gamma: f32,
    lambda: f32,
    mode: ExecMode,
    params: ExecParams,
) -> EpochStats {
    let view = ModelView { p, q, bias: None };
    match mode {
        ExecMode::Sequential => {
            crate::engine::exec::sequential_epoch(data, view, stream, gamma, lambda)
        }
        ExecMode::StaleAdditive => {
            crate::engine::exec::stale_additive_epoch(data, view, stream, gamma, lambda)
        }
        ExecMode::Threaded => crate::engine::exec::threaded_epoch(
            data,
            view,
            stream.workers().max(1),
            params.thread_batch.max(1),
            gamma,
            lambda,
        ),
    }
}

// ---------------------------------------------------------------------------
// Real-thread Hogwild! (cross-validation executor)
// ---------------------------------------------------------------------------

/// Shared factor storage for lock-free multi-threaded updates: f32 values
/// bit-cast into `AtomicU32` cells, read/written with relaxed ordering —
/// exactly the memory semantics Hogwild! assumes.
#[derive(Debug)]
pub struct AtomicFactors {
    rows: u32,
    k: u32,
    data: Vec<AtomicU32>,
    /// Sanitizer instance id (lockset analysis, feature `sanitize`).
    #[cfg(feature = "sanitize")]
    san_id: u64,
}

impl AtomicFactors {
    /// Builds atomic storage from a plain factor matrix.
    pub fn from_matrix<E: Element>(m: &FactorMatrix<E>) -> Self {
        AtomicFactors {
            rows: m.rows(),
            k: m.k(),
            data: m
                .as_slice()
                .iter()
                .map(|e| AtomicU32::new(e.to_f32().to_bits()))
                .collect(),
            #[cfg(feature = "sanitize")]
            san_id: crate::sanitize::new_instance(),
        }
    }

    /// Copies the atomic state back into a plain matrix.
    pub fn to_matrix<E: Element>(&self) -> FactorMatrix<E> {
        let vals: Vec<f32> = self
            .data
            .iter()
            .map(|a| f32::from_bits(a.load(Ordering::Relaxed)))
            .collect();
        FactorMatrix::from_f32_slice(self.rows, self.k, &vals)
    }

    /// Reads row `r` into `out`.
    pub fn load_row(&self, r: u32, out: &mut [f32]) {
        #[cfg(feature = "sanitize")]
        crate::sanitize::on_access(
            "atomic",
            (self.san_id, r),
            crate::sanitize::AccessKind::Read,
        );
        let k = self.k as usize;
        let base = r as usize * k;
        for (o, cell) in out.iter_mut().zip(&self.data[base..base + k]) {
            *o = f32::from_bits(cell.load(Ordering::Relaxed));
        }
    }

    /// Writes row `r` from `vals` (racy by design).
    pub fn store_row(&self, r: u32, vals: &[f32]) {
        #[cfg(feature = "sanitize")]
        crate::sanitize::on_access(
            "atomic",
            (self.san_id, r),
            crate::sanitize::AccessKind::Write,
        );
        let k = self.k as usize;
        let base = r as usize * k;
        for (cell, &v) in self.data[base..base + k].iter().zip(vals) {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }
}

/// Runs one epoch of batch-Hogwild! on real OS threads. Each thread claims
/// `batch`-sample chunks off a shared atomic counter and updates the shared
/// atomic factors lock-free. Returns the number of updates executed.
pub fn threaded_hogwild_epoch(
    data: &CooMatrix,
    p: &Arc<AtomicFactors>,
    q: &Arc<AtomicFactors>,
    threads: usize,
    batch: usize,
    gamma: f32,
    lambda: f32,
) -> u64 {
    assert!(threads > 0 && batch > 0);
    let counter = AtomicUsize::new(0);
    let n = data.nnz();
    let k = p.k as usize;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let counter = &counter;
            let p = Arc::clone(p);
            let q = Arc::clone(q);
            handles.push(scope.spawn(move || {
                let mut pu = vec![0.0f32; k];
                let mut qv = vec![0.0f32; k];
                let mut done = 0u64;
                loop {
                    let start = counter.fetch_add(batch, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + batch).min(n);
                    for i in start..end {
                        let e = data.get(i);
                        p.load_row(e.u, &mut pu);
                        q.load_row(e.v, &mut qv);
                        let err = e.r - pu.iter().zip(&qv).map(|(a, b)| a * b).sum::<f32>();
                        for j in 0..k {
                            let pj = pu[j];
                            let qj = qv[j];
                            pu[j] = pj + gamma * (err * qj - lambda * pj);
                            qv[j] = qj + gamma * (err * pj - lambda * qj);
                        }
                        p.store_row(e.u, &pu);
                        q.store_row(e.v, &qv);
                        done += 1;
                    }
                }
                done
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{BatchHogwildStream, SerialStream};
    use cumf_rng::ChaCha8Rng;
    use cumf_rng::SeedableRng;

    fn tiny_data() -> CooMatrix {
        let mut coo = CooMatrix::new(20, 20);
        for i in 0..200u32 {
            coo.push(i % 20, (i * 7) % 20, ((i % 5) as f32) - 2.0);
        }
        coo
    }

    fn init(m: u32, n: u32, k: u32) -> (FactorMatrix<f32>, FactorMatrix<f32>) {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        (
            FactorMatrix::random_init(m, k, &mut rng),
            FactorMatrix::random_init(n, k, &mut rng),
        )
    }

    #[test]
    fn sequential_mode_counts_updates() {
        let data = tiny_data();
        let (mut p, mut q) = init(20, 20, 4);
        let mut stream = SerialStream::new(data.nnz());
        let stats = run_epoch(
            &data,
            &mut p,
            &mut q,
            &mut stream,
            0.05,
            0.01,
            ExecMode::Sequential,
        );
        assert_eq!(stats.updates, 200);
        assert_eq!(stats.stalls, 0);
        assert_eq!(stats.rounds, 201); // +1 round to observe exhaustion
    }

    #[test]
    fn stale_additive_single_worker_equals_sequential() {
        // With one worker there are no collisions: both modes must produce
        // identical models.
        let data = tiny_data();
        let (mut p1, mut q1) = init(20, 20, 4);
        let (mut p2, mut q2) = (p1.clone(), q1.clone());
        let mut s1 = SerialStream::new(data.nnz());
        let mut s2 = SerialStream::new(data.nnz());
        run_epoch(
            &data,
            &mut p1,
            &mut q1,
            &mut s1,
            0.05,
            0.01,
            ExecMode::Sequential,
        );
        run_epoch(
            &data,
            &mut p2,
            &mut q2,
            &mut s2,
            0.05,
            0.01,
            ExecMode::StaleAdditive,
        );
        for r in 0..20 {
            for (a, b) in p1.row(r).iter().zip(p2.row(r)) {
                assert!((a - b).abs() < 1e-6);
            }
            for (a, b) in q1.row(r).iter().zip(q2.row(r)) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn collisions_are_detected() {
        // 2 workers on a 1x1 matrix: every round collides on both axes.
        let mut coo = CooMatrix::new(1, 1);
        for _ in 0..10 {
            coo.push(0, 0, 1.0);
        }
        let (mut p, mut q) = init(1, 1, 2);
        let mut stream = BatchHogwildStream::new(coo.nnz(), 2, 1);
        let stats = run_epoch(
            &coo,
            &mut p,
            &mut q,
            &mut stream,
            0.01,
            0.0,
            ExecMode::StaleAdditive,
        );
        assert_eq!(stats.updates, 10);
        assert!(stats.row_collisions >= 4, "{stats:?}");
        assert!(stats.col_collisions >= 4);
    }

    #[test]
    fn wide_matrix_has_rare_collisions() {
        let mut coo = CooMatrix::new(1000, 1000);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        use cumf_rng::Rng;
        for _ in 0..2000 {
            coo.push(rng.gen_range(0..1000), rng.gen_range(0..1000), 1.0);
        }
        let (mut p, mut q) = init(1000, 1000, 2);
        let mut stream = BatchHogwildStream::new(coo.nnz(), 4, 16);
        let stats = run_epoch(
            &coo,
            &mut p,
            &mut q,
            &mut stream,
            0.01,
            0.0,
            ExecMode::StaleAdditive,
        );
        // s=4 workers, 1000x1000: collision probability per round ~ 6/1000.
        let frac = (stats.row_collisions + stats.col_collisions) as f64 / stats.rounds as f64;
        assert!(frac < 0.05, "collision fraction {frac}");
    }

    #[test]
    fn stall_fraction() {
        let s = EpochStats {
            updates: 75,
            rounds: 100,
            stalls: 25,
            ..Default::default()
        };
        assert!((s.stall_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(EpochStats::default().stall_fraction(), 0.0);
    }

    #[test]
    fn threaded_hogwild_runs_all_updates() {
        let data = tiny_data();
        let (p0, q0) = init(20, 20, 4);
        let p = Arc::new(AtomicFactors::from_matrix(&p0));
        let q = Arc::new(AtomicFactors::from_matrix(&q0));
        let updates = threaded_hogwild_epoch(&data, &p, &q, 4, 16, 0.05, 0.01);
        assert_eq!(updates, 200);
        // The model must have moved.
        let p_after: FactorMatrix<f32> = p.to_matrix();
        assert_ne!(p_after, p0);
    }

    #[test]
    fn atomic_factors_round_trip() {
        let (p0, _) = init(5, 5, 3);
        let a = AtomicFactors::from_matrix(&p0);
        let back: FactorMatrix<f32> = a.to_matrix();
        assert_eq!(back, p0);
        let mut row = vec![0.0f32; 3];
        a.load_row(2, &mut row);
        assert_eq!(&row[..], p0.row(2));
        a.store_row(2, &[9.0, 8.0, 7.0]);
        a.load_row(2, &mut row);
        assert_eq!(row, vec![9.0, 8.0, 7.0]);
    }
}

// ---------------------------------------------------------------------------
// Lock-striped multi-threaded executor (conflict-free by locking)
// ---------------------------------------------------------------------------

/// Shared f32 factor storage protected by striped row locks — the
/// "just take locks" alternative to Hogwild! that shared-memory CPU
/// implementations use when they cannot tolerate races. Each row maps to
/// one of `shards` `std::sync::Mutex` stripes; an update locks its P
/// stripe and Q stripe in canonical order (P side first, then Q side,
/// ties impossible since the matrices are distinct lock arrays), so no
/// deadlock is possible.
///
/// Every acquisition is counted in the observability registry, and
/// acquisitions that found the stripe already held are counted
/// separately — the contention ratio is the measured analogue of the
/// paper's update-conflict probability.
#[derive(Debug)]
pub struct StripedFactors {
    rows: u32,
    k: u32,
    shards: usize,
    locks: Vec<std::sync::Mutex<()>>,
    data: Vec<std::cell::UnsafeCell<f32>>,
    obs_acquired: cumf_obs::Counter,
    obs_contended: cumf_obs::Counter,
    obs_poisoned: cumf_obs::Counter,
    /// Sanitizer instance id (lockset analysis, feature `sanitize`).
    #[cfg(feature = "sanitize")]
    san_id: u64,
}

// SAFETY: all mutable access to `data` rows happens while holding the
// stripe lock covering that row (enforced by the private API below).
unsafe impl Sync for StripedFactors {}
unsafe impl Send for StripedFactors {}

impl StripedFactors {
    /// Builds striped storage from a factor matrix.
    pub fn from_matrix<E: Element>(m: &FactorMatrix<E>, shards: usize) -> Self {
        assert!(shards > 0);
        StripedFactors {
            rows: m.rows(),
            k: m.k(),
            shards,
            locks: (0..shards).map(|_| std::sync::Mutex::new(())).collect(),
            data: m
                .as_slice()
                .iter()
                .map(|e| std::cell::UnsafeCell::new(e.to_f32()))
                .collect(),
            obs_acquired: cumf_obs::counter(
                "cumf_core_stripe_acquisitions_total",
                "Row-stripe lock acquisitions in the lock-striped executor",
            ),
            obs_contended: cumf_obs::counter(
                "cumf_core_stripe_contended_total",
                "Row-stripe acquisitions that found the stripe already held",
            ),
            obs_poisoned: cumf_obs::counter(
                "cumf_core_stripe_poisoned_total",
                "Row-stripe acquisitions that found the stripe poisoned by a panicked writer",
            ),
            #[cfg(feature = "sanitize")]
            san_id: crate::sanitize::new_instance(),
        }
    }

    /// Copies back into a plain matrix (requires exclusive access: `&mut`).
    pub fn into_matrix<E: Element>(self) -> FactorMatrix<E> {
        let vals: Vec<f32> = self.data.into_iter().map(|c| c.into_inner()).collect();
        FactorMatrix::from_f32_slice(self.rows, self.k, &vals)
    }

    #[inline]
    fn stripe(&self, row: u32) -> usize {
        row as usize % self.shards
    }

    /// The stripe pair a two-row update must acquire, in canonical
    /// ascending stripe order regardless of the argument order. This is
    /// the single place the two-row acquisition order is decided, so the
    /// static deadlock pass and the runtime path cannot drift apart.
    #[inline]
    pub fn ordered_stripes(&self, a: u32, b: u32) -> (usize, usize) {
        let (sa, sb) = (self.stripe(a), self.stripe(b));
        (sa.min(sb), sa.max(sb))
    }

    /// Acquires one stripe lock, tallying contention and surfacing
    /// poison. Acquisitions are counted only once the guard is actually
    /// held; a stripe found busy counts as contended, while a stripe
    /// poisoned by a panicked writer is counted separately
    /// (`stripe_poisoned_total`) and propagates a panic — the factors
    /// under it may be torn.
    #[inline]
    fn lock_stripe(&self, stripe: usize) -> std::sync::MutexGuard<'_, ()> {
        let lock = &self.locks[stripe];
        let guard = match lock.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.obs_contended.inc();
                match lock.lock() {
                    Ok(guard) => guard,
                    Err(_) => {
                        self.obs_poisoned.inc();
                        panic!(
                            "factor stripe {stripe} poisoned: a writer panicked while \
                             holding it, the rows it covers may be torn"
                        );
                    }
                }
            }
            Err(std::sync::TryLockError::Poisoned(_)) => {
                self.obs_poisoned.inc();
                panic!(
                    "factor stripe {stripe} poisoned: a writer panicked while \
                     holding it, the rows it covers may be torn"
                );
            }
        };
        self.obs_acquired.inc();
        guard
    }

    /// Runs `f` with a mutable view of row `row` while holding its stripe
    /// lock.
    #[inline]
    fn with_row_locked<R>(&self, row: u32, f: impl FnOnce(&mut [f32]) -> R) -> R {
        let stripe = self.stripe(row);
        let _guard = self.lock_stripe(stripe);
        #[cfg(feature = "sanitize")]
        let _held = crate::sanitize::hold((self.san_id << 16) | stripe as u64);
        #[cfg(feature = "sanitize")]
        crate::sanitize::on_access(
            "striped",
            (self.san_id, row),
            crate::sanitize::AccessKind::Write,
        );
        let k = self.k as usize;
        let base = row as usize * k;
        // SAFETY: the stripe lock serialises all access to rows of this
        // stripe; the returned slice does not escape `f`.
        let slice = unsafe { std::slice::from_raw_parts_mut(self.data[base].get(), k) };
        f(slice)
    }

    /// Runs `f` with mutable views of two *distinct* rows of this matrix
    /// (passed in argument order) while holding both rows' stripe locks.
    ///
    /// The locks are acquired in canonical ascending **stripe** order
    /// ([`Self::ordered_stripes`]), whatever order the rows are given
    /// in, so two concurrent two-row updates can never wait on each
    /// other in a cycle. When both rows share a stripe the lock is taken
    /// once. This is the update shape the online-SGD / fold-in paths
    /// need (two rows of the same factor matrix touched atomically);
    /// the acquisition order is certified by the `cumf-analyze` deadlock
    /// pass (`two-row-update` protocol) and its descending broken twin
    /// is refuted there.
    pub fn with_two_rows_locked<R>(
        &self,
        a: u32,
        b: u32,
        f: impl FnOnce(&mut [f32], &mut [f32]) -> R,
    ) -> R {
        assert_ne!(a, b, "two-row update needs distinct rows (got {a} twice)");
        assert!(
            a < self.rows && b < self.rows,
            "rows ({a}, {b}) out of bounds for {} rows",
            self.rows
        );
        let (lo, hi) = self.ordered_stripes(a, b);
        let _guard_lo = self.lock_stripe(lo);
        let _guard_hi = if hi != lo {
            Some(self.lock_stripe(hi))
        } else {
            None
        };
        #[cfg(feature = "sanitize")]
        let _held_lo = crate::sanitize::hold((self.san_id << 16) | lo as u64);
        #[cfg(feature = "sanitize")]
        let _held_hi = (hi != lo).then(|| crate::sanitize::hold((self.san_id << 16) | hi as u64));
        #[cfg(feature = "sanitize")]
        for row in [a, b] {
            crate::sanitize::on_access(
                "striped",
                (self.san_id, row),
                crate::sanitize::AccessKind::Write,
            );
        }
        let k = self.k as usize;
        // SAFETY: the stripe locks covering both rows are held for the
        // whole call (one lock when the stripes coincide), the rows are
        // distinct so the two k-cell ranges are disjoint, and neither
        // slice escapes `f`.
        let row_a = unsafe { std::slice::from_raw_parts_mut(self.data[a as usize * k].get(), k) };
        let row_b = unsafe { std::slice::from_raw_parts_mut(self.data[b as usize * k].get(), k) };
        f(row_a, row_b)
    }
}

// ---------------------------------------------------------------------------
// Static lock-acquisition site annotations
// ---------------------------------------------------------------------------

/// One statically-declared lock-acquisition site: while holding `held`
/// (`None` at a protocol entry), the anchored code acquires `acquires`.
///
/// These annotations are the instrument-free extraction layer of the
/// `cumf-analyze` deadlock pass: they live next to the code they
/// describe, and the analyzer builds the global lock-order graph from
/// them, proves it acyclic (or refutes it with a cycle witness), and
/// derives the FIFO wait-chain bounds of the liveness certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockSiteAnno {
    /// Protocol the site belongs to (one lock-order graph per protocol).
    pub protocol: &'static str,
    /// Lock class held when the acquisition happens (`None` = entry).
    pub held: Option<&'static str>,
    /// Lock class being acquired.
    pub acquires: &'static str,
    /// Source anchor of the acquisition (`file::item`).
    pub anchor: &'static str,
    /// Why the order is what it is.
    pub note: &'static str,
}

/// Every blocking acquisition this module ships, as consumed by the
/// deadlock analyzer. Keep in sync with the executors above: the
/// broken-twin refutations in `cumf-analyze` are what make a drift here
/// visible.
pub const LOCK_SITES: &[LockSiteAnno] = &[
    LockSiteAnno {
        protocol: "striped-epoch",
        held: None,
        acquires: "P.stripe",
        anchor: "crates/core/src/concurrent.rs::striped_locked_epoch",
        note: "per-update entry: the P-side stripe is always taken first",
    },
    LockSiteAnno {
        protocol: "striped-epoch",
        held: Some("P.stripe"),
        acquires: "Q.stripe",
        anchor: "crates/core/src/concurrent.rs::striped_locked_epoch",
        note: "canonical P-then-Q order; the matrices are distinct lock arrays",
    },
    LockSiteAnno {
        protocol: "two-row-update",
        held: None,
        acquires: "stripe.lo",
        anchor: "crates/core/src/concurrent.rs::StripedFactors::with_two_rows_locked",
        note: "entry: the lower-indexed stripe of the pair is taken first",
    },
    LockSiteAnno {
        protocol: "two-row-update",
        held: Some("stripe.lo"),
        acquires: "stripe.hi",
        anchor: "crates/core/src/concurrent.rs::StripedFactors::with_two_rows_locked",
        note: "ascending stripe order via ordered_stripes; equal stripes lock once",
    },
];

/// Every shipped update path, lifted into the asynchrony IR consumed by
/// the `cumf-analyze` staleness certifier. Like [`LOCK_SITES`], these
/// annotations live next to the executors they describe; the analyzer
/// instantiates each path, computes its worst-case per-row staleness
/// bound τ, and cross-validates τ by exhaustive interleaving model
/// checking. Keep in sync with the executors: the analyzer panics on
/// drift (a path here with no model, or a model with no path here).
pub const UPDATE_PATHS: &[crate::stale::UpdatePathAnno] = &[
    crate::stale::UpdatePathAnno {
        path: "solver-hogwild",
        footprint: crate::stale::Footprint::SharedRows,
        sync: crate::stale::SyncKind::RoundBarrier,
        anchor: "crates/core/src/engine/exec.rs::stale_additive_epoch",
        note: "lockstep rounds: snapshot reads, additive commits, barrier \
               every round — each of the other W−1 workers publishes at \
               most one write between a read and the write it feeds",
    },
    crate::stale::UpdatePathAnno {
        path: "batch-hogwild-threaded",
        footprint: crate::stale::Footprint::SharedRows,
        sync: crate::stale::SyncKind::EpochJoin,
        anchor: "crates/core/src/concurrent.rs::threaded_hogwild_epoch",
        note: "free-running threads claim batches off a shared counter; \
               the only barrier is the epoch join, so τ is bounded by \
               (W−1) × the per-epoch update quota",
    },
    crate::stale::UpdatePathAnno {
        path: "striped-epoch",
        footprint: crate::stale::Footprint::RowLocked,
        sync: crate::stale::SyncKind::LockRelease,
        anchor: "crates/core/src/concurrent.rs::striped_locked_epoch",
        note: "every read-modify-write holds both row stripes, so the \
               read a write feeds is never stale (τ = 0)",
    },
    crate::stale::UpdatePathAnno {
        path: "two-row-update",
        footprint: crate::stale::Footprint::RowLocked,
        sync: crate::stale::SyncKind::LockRelease,
        anchor: "crates/core/src/concurrent.rs::StripedFactors::with_two_rows_locked",
        note: "both rows locked in ascending stripe order across the \
               whole update — serialised per row pair (τ = 0)",
    },
    crate::stale::UpdatePathAnno {
        path: "partitioned-grid",
        footprint: crate::stale::Footprint::DisjointRows,
        sync: crate::stale::SyncKind::GridIndependence,
        anchor: "crates/core/src/multi_gpu.rs::train_partitioned",
        note: "Eq. 6 wave schedule: concurrently-executed blocks share no \
               row or column segment, so cross-writer row sets are \
               disjoint (τ = 0 across blocks)",
    },
];

/// One epoch of lock-striped parallel SGD on real OS threads: each thread
/// claims `batch`-sample chunks off a shared counter and performs each
/// update under its rows' stripe locks (P row lock held, then Q row lock —
/// canonical order, deadlock-free). Returns the number of updates.
pub fn striped_locked_epoch(
    data: &CooMatrix,
    p: &StripedFactors,
    q: &StripedFactors,
    threads: usize,
    batch: usize,
    gamma: f32,
    lambda: f32,
) -> u64 {
    assert!(threads > 0 && batch > 0);
    assert_eq!(p.k, q.k, "P and Q must share k");
    let counter = AtomicUsize::new(0);
    let n = data.nnz();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let counter = &counter;
            handles.push(scope.spawn(move || {
                let mut done = 0u64;
                loop {
                    let start = counter.fetch_add(batch, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    for i in start..(start + batch).min(n) {
                        let e = data.get(i);
                        // Canonical order: P stripe, then Q stripe.
                        p.with_row_locked(e.u, |pu| {
                            q.with_row_locked(e.v, |qv| {
                                crate::kernel::sgd_update(pu, qv, e.r, gamma, lambda);
                            })
                        });
                        done += 1;
                    }
                }
                done
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .sum()
    })
}

#[cfg(test)]
mod striped_tests {
    use super::*;
    use crate::metrics::rmse;
    use cumf_data::synth::{generate, SynthConfig};
    use cumf_rng::ChaCha8Rng;
    use cumf_rng::SeedableRng;

    #[test]
    fn striped_epoch_runs_all_updates_and_converges() {
        let d = generate(&SynthConfig {
            m: 200,
            n: 150,
            k_true: 3,
            train_samples: 10_000,
            test_samples: 1_000,
            noise_std: 0.1,
            row_skew: 0.4,
            col_skew: 0.4,
            rating_offset: 1.0,
            seed: 8,
        });
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let p0: FactorMatrix<f32> = FactorMatrix::random_init(200, 5, &mut rng);
        let q0: FactorMatrix<f32> = FactorMatrix::random_init(150, 5, &mut rng);
        let p = StripedFactors::from_matrix(&p0, 64);
        let q = StripedFactors::from_matrix(&q0, 64);
        let mut total = 0;
        for _ in 0..12 {
            total += striped_locked_epoch(&d.train, &p, &q, 4, 64, 0.1, 0.02);
        }
        assert_eq!(total, 12 * 10_000);
        let pm: FactorMatrix<f32> = p.into_matrix();
        let qm: FactorMatrix<f32> = q.into_matrix();
        let r = rmse(&d.test, &pm, &qm);
        assert!(r < 0.25, "striped-lock SGD should converge, got {r}");
    }

    #[test]
    fn striped_storage_round_trips() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let m: FactorMatrix<f32> = FactorMatrix::random_init(10, 3, &mut rng);
        let s = StripedFactors::from_matrix(&m, 4);
        s.with_row_locked(3, |row| {
            row.copy_from_slice(&[7.0, 8.0, 9.0]);
        });
        let back: FactorMatrix<f32> = s.into_matrix();
        assert_eq!(back.row(3), &[7.0, 8.0, 9.0]);
        assert_eq!(back.row(0), m.row(0));
    }

    #[test]
    fn poisoned_stripe_counts_distinctly_and_acquisition_counts_after_hold() {
        cumf_obs::set_enabled(true);
        let acquired = cumf_obs::counter(
            "cumf_core_stripe_acquisitions_total",
            "Row-stripe lock acquisitions in the lock-striped executor",
        );
        let poisoned = cumf_obs::counter(
            "cumf_core_stripe_poisoned_total",
            "Row-stripe acquisitions that found the stripe poisoned by a panicked writer",
        );
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let m: FactorMatrix<f32> = FactorMatrix::random_init(4, 2, &mut rng);
        let s = StripedFactors::from_matrix(&m, 1);
        let acquired_0 = acquired.get();
        let poisoned_0 = poisoned.get();
        // A writer panicking under the stripe poisons it (one successful
        // acquisition).
        let join = std::thread::scope(|scope| {
            scope
                .spawn(|| s.with_row_locked(0, |_| panic!("writer dies mid-update")))
                .join()
        });
        assert!(join.is_err());
        // The next acquisition must surface the poison distinctly: the
        // poisoned counter ticks, the acquisition counter does NOT (the
        // guard was never held).
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.with_row_locked(1, |row| row[0])
        }));
        let err = *attempt.unwrap_err().downcast::<String>().unwrap();
        assert!(err.contains("poisoned"), "{err}");
        assert_eq!(poisoned.get() - poisoned_0, 1);
        assert_eq!(
            acquired.get() - acquired_0,
            1,
            "only the writer's successful acquisition may be counted"
        );
    }

    #[test]
    fn two_row_update_acquires_ascending_stripes() {
        // The canonical order is a pure function of the (unordered) row
        // pair: sorted by stripe index and symmetric in the arguments —
        // the property the deadlock pass certifies statically.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let m: FactorMatrix<f32> = FactorMatrix::random_init(64, 2, &mut rng);
        let s = StripedFactors::from_matrix(&m, 7);
        use cumf_rng::Rng;
        for _ in 0..200 {
            let a = rng.gen_range(0u32..64);
            let b = rng.gen_range(0u32..64);
            let (lo, hi) = s.ordered_stripes(a, b);
            assert!(lo <= hi, "stripes out of order for rows ({a}, {b})");
            assert_eq!(
                (lo, hi),
                s.ordered_stripes(b, a),
                "order must not depend on argument order"
            );
        }
        // Argument order is preserved for the data even when the stripe
        // order swaps: rows 8 and 3 map to stripes 1 and 3, so the lock
        // order is (1, 3) but the slices arrive as (row 8, row 3).
        s.with_two_rows_locked(8, 3, |ra, rb| {
            ra.copy_from_slice(&[8.0, 8.0]);
            rb.copy_from_slice(&[3.0, 3.0]);
        });
        // Same-stripe pair (rows 2 and 9 are both stripe 2): locked once.
        s.with_two_rows_locked(2, 9, |ra, rb| {
            ra[0] = 2.0;
            rb[0] = 9.0;
        });
        let back: FactorMatrix<f32> = s.into_matrix();
        assert_eq!(back.row(8), &[8.0, 8.0]);
        assert_eq!(back.row(3), &[3.0, 3.0]);
        assert_eq!(back.row(2)[0], 2.0);
        assert_eq!(back.row(9)[0], 9.0);
    }

    #[test]
    #[should_panic(expected = "distinct rows")]
    fn two_row_update_rejects_duplicate_row() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let m: FactorMatrix<f32> = FactorMatrix::random_init(4, 2, &mut rng);
        let s = StripedFactors::from_matrix(&m, 2);
        s.with_two_rows_locked(1, 1, |_, _| {});
    }

    #[test]
    fn two_row_heavy_contention_is_deadlock_free() {
        // Half the threads update (0, 1), half (1, 0): under a naive
        // argument-order acquisition this is the ABBA pattern; the
        // canonical ascending-stripe order must let it finish.
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let m: FactorMatrix<f32> = FactorMatrix::random_init(2, 2, &mut rng);
        let s = StripedFactors::from_matrix(&m, 2);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let s = &s;
                scope.spawn(move || {
                    let (a, b) = if t % 2 == 0 { (0, 1) } else { (1, 0) };
                    for _ in 0..2_000 {
                        s.with_two_rows_locked(a, b, |ra, rb| {
                            ra[0] += 1.0;
                            rb[1] += 1.0;
                        });
                    }
                });
            }
        });
        let back: FactorMatrix<f32> = s.into_matrix();
        // 8 threads x 2000 updates each touched cell (a, 0) exactly once
        // per update: the totals prove no update was lost or torn.
        let total = (back.row(0)[0] - m.row(0)[0]) + (back.row(1)[0] - m.row(1)[0]);
        assert!((total - 16_000.0).abs() < 1e-3, "lost updates: {total}");
    }

    #[test]
    fn lock_sites_name_real_protocols() {
        // The annotation table is consumed by the deadlock analyzer;
        // entries must anchor into this file and every `held` class must
        // appear as an `acquires` of the same protocol (no dangling
        // hold-edges).
        for site in LOCK_SITES {
            assert!(site.anchor.contains("concurrent.rs"), "{site:?}");
            if let Some(held) = site.held {
                assert!(
                    LOCK_SITES
                        .iter()
                        .any(|s| s.protocol == site.protocol && s.acquires == held),
                    "dangling held class {held} in {site:?}"
                );
            }
        }
    }

    #[test]
    fn heavy_contention_is_deadlock_free() {
        // All samples share one row and one column: every update contends
        // on the same two stripes. Must finish (canonical lock order).
        let mut coo = CooMatrix::new(2, 2);
        for _ in 0..2_000 {
            coo.push(0, 0, 1.0);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let p0: FactorMatrix<f32> = FactorMatrix::random_init(2, 3, &mut rng);
        let q0: FactorMatrix<f32> = FactorMatrix::random_init(2, 3, &mut rng);
        let p = StripedFactors::from_matrix(&p0, 2);
        let q = StripedFactors::from_matrix(&q0, 2);
        let done = striped_locked_epoch(&coo, &p, &q, 8, 16, 0.01, 0.0);
        assert_eq!(done, 2_000);
    }
}
