//! Deterministic fault injection and self-healing supervision.
//!
//! The paper's multi-GPU pipeline (§6: partitioned Hogwild! over
//! PCIe/NVLink with overlapped transfers) assumes devices, links, and
//! gradients never misbehave. A production-scale system must keep training
//! through device loss, corrupted transfers, and NaN storms — exactly the
//! partition hand-off seams where heterogeneous MF systems report faults
//! surfacing. This module makes those faults *first-class and seeded*:
//!
//! * [`FaultPlan`] — a deterministic schedule of [`FaultEvent`]s, placed by
//!   epoch or by simulated time and optionally drawn from `cumf-rng`, so
//!   the same seed always produces the same faults *and* the same recovery
//!   story;
//! * [`FaultyPartitionedBackend`] — an [`crate::engine::EpochBackend`]
//!   decorator that injects transfer corruption/stalls (checksummed
//!   hand-offs, DES timeout detection, bounded retry with exponential
//!   backoff), NaN/Inf gradient storms, and learning-rate spikes into the
//!   partitioned path;
//! * [`TrainSupervisor`] — wraps the epoch pipeline and recovers by
//!   policy: retry/backoff for transfer faults, rollback-to-checkpoint
//!   (reusing the CMFK resume machinery, learning-rate state included) for
//!   divergence and NaN storms, and graceful degradation onto the
//!   surviving simulated GPUs for device loss;
//! * [`chaos`] — the scenario matrix behind `cumf chaos`: fault × policy
//!   runs asserted against the fault-free baseline RMSE.
//!
//! Every injection, detection, retry, rollback, and degradation is
//! recorded in a [`RecoveryLog`] (digestable for determinism checks),
//! counted in the `cumf-obs` registry (`cumf_faults_*` series), and
//! wrapped in `faults`-category trace spans.

pub mod chaos;
mod inject;
mod retry;
mod supervisor;

pub use chaos::{run_chaos, ChaosOptions, ChaosReport, ScenarioOutcome, ScenarioResult};
pub use inject::FaultyPartitionedBackend;
pub use retry::{detect_stall, RetryPolicy, StallVerdict};
pub use supervisor::{
    SupervisedResult, SupervisorConfig, TrainError, TrainSupervisor, WatchdogAnno,
};

use cumf_rng::{ChaCha8Rng, Rng, SeedableRng};

/// FNV-1a over a byte slice — the workspace's dependency-free digest,
/// shared by the CMFK checkpoint footer, the partition hand-off checksums,
/// and the recovery-log determinism digests.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What goes wrong. Each variant names one seam of the stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// A simulated GPU drops out of the ensemble. Recovered by graceful
    /// degradation: the grid is re-scheduled onto the surviving devices.
    DeviceLoss {
        /// Ensemble index of the lost device.
        gpu: u32,
    },
    /// SM throttling: only `survival` of the device's streaming
    /// multiprocessors stay healthy (see
    /// [`GpuSpec::throttled`](cumf_gpu_sim::GpuSpec::throttled)). A timing
    /// fault — numerics are unaffected, throughput drops.
    SmThrottle {
        /// Fraction of SMs surviving, `(0, 1]`.
        survival: f64,
    },
    /// A partition hand-off transfer arrives corrupted (bit flips on the
    /// link). Detected by the hand-off checksum, recovered by bounded
    /// retry with exponential backoff.
    TransferCorruption {
        /// Factor entries flipped per corrupted transfer.
        flips: u32,
        /// The link delivers cleanly from this attempt on (1-based); a
        /// value above the retry policy's `max_attempts` means the link is
        /// effectively down and the run must fail typed, not spin.
        clean_after: u32,
    },
    /// A transfer stalls for `stall_s` simulated seconds. Detection goes
    /// through a DES timeout race (see [`detect_stall`]); `permanent`
    /// stalls exhaust the retry budget and surface a [`TrainError`].
    TransferStall {
        /// Stall length in simulated seconds.
        stall_s: f64,
        /// If true the link never recovers.
        permanent: bool,
    },
    /// A NaN/Inf gradient storm poisons factor rows (kernel-path fault).
    /// Detected by the post-epoch non-finite scan, recovered by rollback
    /// to the last checkpoint.
    NanStorm {
        /// Number of P rows poisoned.
        rows: u32,
    },
    /// The learning rate spikes by `factor` for one epoch (a scheduler
    /// glitch), typically driving divergence. Recovered by rollback.
    LrSpike {
        /// Multiplier applied to that epoch's γ.
        factor: f32,
    },
}

impl FaultKind {
    /// Short stable name for logs and reports.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::DeviceLoss { .. } => "device-loss",
            FaultKind::SmThrottle { .. } => "sm-throttle",
            FaultKind::TransferCorruption { .. } => "transfer-corruption",
            FaultKind::TransferStall { .. } => "transfer-stall",
            FaultKind::NanStorm { .. } => "nan-storm",
            FaultKind::LrSpike { .. } => "lr-spike",
        }
    }

    /// True for faults the supervisor handles at a segment boundary
    /// (rebuilding the backend) rather than inside an epoch.
    pub fn is_topology_fault(&self) -> bool {
        matches!(
            self,
            FaultKind::DeviceLoss { .. } | FaultKind::SmThrottle { .. }
        )
    }
}

/// When a fault fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultTrigger {
    /// Fires at the start of the given 0-based epoch.
    Epoch(u32),
    /// Fires at the first epoch whose start lies at or past this many
    /// simulated seconds (the multi-GPU pipeline clock).
    SimTime(f64),
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub trigger: FaultTrigger,
    /// What goes wrong.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Whether the event is due at (or before) the given epoch / simulated
    /// time. Events are one-shot: the caller tracks consumption, so `due`
    /// uses `>=` and a consumed event never re-fires — which is what keeps
    /// a rolled-back re-execution of the same epochs fault-free.
    pub fn due(&self, epoch: u32, sim_seconds: f64) -> bool {
        match self.trigger {
            FaultTrigger::Epoch(e) => epoch >= e,
            FaultTrigger::SimTime(t) => sim_seconds >= t,
        }
    }
}

/// A deterministic, seedable schedule of faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled events, in insertion order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (the fault-free baseline).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules `kind` at the start of `epoch` (builder style).
    pub fn at_epoch(mut self, epoch: u32, kind: FaultKind) -> Self {
        self.events.push(FaultEvent {
            trigger: FaultTrigger::Epoch(epoch),
            kind,
        });
        self
    }

    /// Schedules `kind` at the first epoch starting at or after
    /// `sim_seconds` on the backend's simulated clock.
    pub fn at_sim_time(mut self, sim_seconds: f64, kind: FaultKind) -> Self {
        self.events.push(FaultEvent {
            trigger: FaultTrigger::SimTime(sim_seconds),
            kind,
        });
        self
    }

    /// Draws `count` faults uniformly from `menu`, scheduled at distinct
    /// epochs in `1..epochs`, all deterministically from `seed` — the same
    /// seed always yields the same plan (and therefore, under supervision,
    /// the same recovery log).
    pub fn seeded(seed: u64, epochs: u32, menu: &[FaultKind], count: usize) -> Self {
        assert!(!menu.is_empty(), "fault menu must not be empty");
        assert!(epochs >= 2, "need at least 2 epochs to schedule faults");
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFA17);
        let mut plan = FaultPlan::new();
        let mut used = Vec::new();
        for _ in 0..count {
            let kind = menu[rng.gen_range(0..menu.len())];
            // Distinct epochs keep recovery stories readable; fall back to
            // collisions once the epoch range is exhausted.
            let mut epoch = rng.gen_range(1..epochs);
            for _ in 0..8 {
                if !used.contains(&epoch) {
                    break;
                }
                epoch = rng.gen_range(1..epochs);
            }
            used.push(epoch);
            plan = plan.at_epoch(epoch, kind);
        }
        plan
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// FNV-1a digest of the plan (for logs and determinism checks).
    pub fn digest(&self) -> u64 {
        fnv1a64(format!("{:?}", self.events).as_bytes())
    }
}

/// What the supervisor/injector did about a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryKind {
    /// A fault was injected.
    Injected,
    /// A fault was detected (checksum mismatch, timeout, non-finite scan,
    /// divergence stop).
    Detected,
    /// A transfer was retried after backoff.
    Retried,
    /// A fault was fully recovered from.
    Recovered,
    /// Training state was rolled back to the last checkpoint.
    RolledBack,
    /// The run degraded onto fewer / slower simulated devices.
    Degraded,
    /// Recovery was impossible; the run surfaces a [`TrainError`].
    Fatal,
}

impl RecoveryKind {
    fn counter(&self) -> (&'static str, &'static str) {
        match self {
            RecoveryKind::Injected => ("cumf_faults_injected_total", "Faults injected"),
            RecoveryKind::Detected => ("cumf_faults_detected_total", "Faults detected"),
            RecoveryKind::Retried => (
                "cumf_faults_retries_total",
                "Transfer retries performed by the supervisor",
            ),
            RecoveryKind::Recovered => ("cumf_faults_recovered_total", "Faults recovered from"),
            RecoveryKind::RolledBack => (
                "cumf_faults_rollbacks_total",
                "Checkpoint rollbacks performed by the supervisor",
            ),
            RecoveryKind::Degraded => (
                "cumf_faults_degradations_total",
                "Graceful degradations (device loss / SM throttle) applied",
            ),
            RecoveryKind::Fatal => (
                "cumf_faults_fatal_total",
                "Unrecoverable faults surfaced as typed errors",
            ),
        }
    }

    /// Short stable name for log lines.
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryKind::Injected => "inject",
            RecoveryKind::Detected => "detect",
            RecoveryKind::Retried => "retry",
            RecoveryKind::Recovered => "recover",
            RecoveryKind::RolledBack => "rollback",
            RecoveryKind::Degraded => "degrade",
            RecoveryKind::Fatal => "fatal",
        }
    }
}

/// One line of the recovery story.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEvent {
    /// Epoch (0-based) the event happened at.
    pub epoch: u32,
    /// What happened.
    pub kind: RecoveryKind,
    /// Deterministic human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "epoch {:>3} {:>8}: {}",
            self.epoch,
            self.kind.name(),
            self.detail
        )
    }
}

/// The ordered fault/recovery event log of a supervised run. Every push
/// also bumps the matching `cumf_faults_*` counter and emits a
/// `faults`-category trace span, so the story is visible in metrics and
/// traces as well as in this structure.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryLog {
    /// Events in the order they happened.
    pub events: Vec<RecoveryEvent>,
}

impl RecoveryLog {
    /// Appends an event (and mirrors it into the obs registry).
    pub fn push(&mut self, epoch: u32, kind: RecoveryKind, detail: impl Into<String>) {
        let detail = detail.into();
        let (name, help) = kind.counter();
        cumf_obs::counter(name, help).inc();
        let mut span = cumf_obs::span("faults", format!("{}:{}", kind.name(), epoch));
        span.set_arg("epoch", epoch as f64);
        drop(span);
        self.events.push(RecoveryEvent {
            epoch,
            kind,
            detail,
        });
    }

    /// Appends every event of `other`.
    pub fn extend(&mut self, other: RecoveryLog) {
        self.events.extend(other.events);
    }

    /// Number of events of the given kind.
    pub fn count(&self, kind: RecoveryKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// FNV-1a digest of the rendered log — two runs with the same seed
    /// must produce the same digest (the determinism contract of the
    /// chaos harness).
    pub fn digest(&self) -> u64 {
        fnv1a64(self.to_string().as_bytes())
    }
}

impl std::fmt::Display for RecoveryLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn plan_is_deterministic_in_its_seed() {
        let menu = [
            FaultKind::NanStorm { rows: 2 },
            FaultKind::LrSpike { factor: 50.0 },
        ];
        let a = FaultPlan::seeded(7, 20, &menu, 4);
        let b = FaultPlan::seeded(7, 20, &menu, 4);
        let c = FaultPlan::seeded(8, 20, &menu, 4);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
        assert_eq!(a.len(), 4);
        for e in &a.events {
            match e.trigger {
                FaultTrigger::Epoch(ep) => assert!((1..20).contains(&ep)),
                FaultTrigger::SimTime(_) => panic!("seeded plans are epoch-scheduled"),
            }
        }
    }

    #[test]
    fn due_is_monotone_and_one_shot_by_consumption() {
        let e = FaultEvent {
            trigger: FaultTrigger::Epoch(3),
            kind: FaultKind::NanStorm { rows: 1 },
        };
        assert!(!e.due(2, 0.0));
        assert!(e.due(3, 0.0));
        assert!(e.due(7, 0.0), "due stays true; consumption gates refiring");
        let t = FaultEvent {
            trigger: FaultTrigger::SimTime(1.5),
            kind: FaultKind::LrSpike { factor: 10.0 },
        };
        assert!(!t.due(0, 1.0));
        assert!(t.due(0, 1.5));
    }

    #[test]
    fn recovery_log_digest_tracks_content() {
        let mut a = RecoveryLog::default();
        a.push(2, RecoveryKind::Injected, "nan-storm rows=2");
        a.push(2, RecoveryKind::Detected, "non-finite scan: 12 entries");
        let mut b = RecoveryLog::default();
        b.push(2, RecoveryKind::Injected, "nan-storm rows=2");
        b.push(2, RecoveryKind::Detected, "non-finite scan: 12 entries");
        assert_eq!(a.digest(), b.digest());
        b.push(3, RecoveryKind::RolledBack, "to epoch 0");
        assert_ne!(a.digest(), b.digest());
        assert_eq!(b.count(RecoveryKind::RolledBack), 1);
    }
}
