//! The self-healing training supervisor.
//!
//! [`TrainSupervisor`] wraps the layered epoch pipeline with a recovery
//! state machine (documented in DESIGN.md §8):
//!
//! ```text
//!            ┌────────────────────────────────────────────┐
//!            ▼                                            │
//!  VALIDATE ──▶ RUN EPOCH ──▶ ok ──▶ COMMIT (+snapshot) ──┘
//!   │ bad          │ │
//!   ▼              │ └── fatal flag ──▶ TYPED ERROR
//!  InvalidConfig   └──── diverged ───▶ ROLLBACK ──▶ RUN EPOCH …
//!                                        │ budget spent
//!                                        ▼
//!                                    Unrecoverable
//! ```
//!
//! Driving the pipeline one epoch per segment keeps the control flow
//! trivial and costs nothing but a resume-state clone: the engine's
//! resume guarantee (PR 2) makes a segmented run bit-identical to an
//! unsegmented one, and the per-epoch wave-schedule seeding
//! ([`PartitionedBackend::with_epoch_seed`]) extends that guarantee
//! across rollbacks and device-loss rebuilds.
//!
//! Recovery policies, by fault class:
//!
//! * **transfer corruption / stalls** — handled inside the epoch by
//!   [`super::FaultyPartitionedBackend`] (bounded retry, exponential
//!   backoff); a permanently-failing link raises the shared fatal flag
//!   and the supervisor surfaces [`TrainError::TransferFailed`] instead
//!   of spinning;
//! * **divergence / NaN storms** — detected by the divergence guard's
//!   model scan; the supervisor restores the last in-memory snapshot
//!   (model *and* [`ResumeState`], so the BoldDriver learning-rate state
//!   rolls back with the factors) and re-enters the pipeline;
//! * **device loss / SM throttling** — applied at the epoch boundary by
//!   rebuilding the partitioned backend on the surviving GPU count (or a
//!   [`GpuSpec::throttled`] device), recording the throughput hit in the
//!   obs registry.

use cumf_data::CooMatrix;
use cumf_gpu_sim::{GpuSpec, LinkSpec, SgdUpdateCost};
use cumf_rng::{ChaCha8Rng, SeedableRng};

use crate::engine::{
    BackendTime, DivergenceGuard, EngineModel, EpochCtx, EpochObserver, EpochPipeline,
    PartitionedBackend, PipelineControl, ResumeState,
};
use crate::feature::{Element, FactorMatrix};
use crate::metrics::Trace;
use crate::model_io::ModelIoError;
use crate::multi_gpu::{EpochTiming, MultiGpuConfig};
use crate::partition::Grid;
use crate::solver::{train_resumable, CheckpointSpec, Scheme, SolverConfig, TrainResult};
use crate::BiasTerms;

use super::inject::{FatalFlag, FaultyPartitionedBackend};
use super::retry::RetryPolicy;
use super::{FaultPlan, RecoveryKind, RecoveryLog};

/// Typed failure of a supervised training run.
#[derive(Debug)]
pub enum TrainError {
    /// A configuration the panicking entry points would assert on; the
    /// message matches the corresponding panic text.
    InvalidConfig(String),
    /// Checkpoint IO / format failure (save, or a corrupt `--resume`).
    Checkpoint(ModelIoError),
    /// A transfer could not be completed within the retry budget.
    TransferFailed {
        /// Epoch the transfer permanently failed at.
        epoch: u32,
        /// Attempts spent (including the first try).
        attempts: u32,
    },
    /// Divergence persisted through the rollback budget.
    Unrecoverable {
        /// Epoch of the final failed attempt.
        epoch: u32,
        /// Rollbacks spent before giving up.
        rollbacks: u32,
    },
    /// Device loss left no simulated GPU to run on.
    AllDevicesLost {
        /// Epoch the last device was lost at.
        epoch: u32,
    },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            TrainError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            TrainError::TransferFailed { epoch, attempts } => {
                write!(
                    f,
                    "transfer failed permanently at epoch {epoch} after {attempts} attempts"
                )
            }
            TrainError::Unrecoverable { epoch, rollbacks } => {
                write!(
                    f,
                    "training unrecoverable at epoch {epoch} after {rollbacks} rollbacks"
                )
            }
            TrainError::AllDevicesLost { epoch } => {
                write!(f, "all simulated GPUs lost by epoch {epoch}")
            }
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelIoError> for TrainError {
    fn from(e: ModelIoError) -> Self {
        TrainError::Checkpoint(e)
    }
}

/// Recovery-policy knobs of the supervisor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// Retry/backoff policy for transfer faults.
    pub retry: RetryPolicy,
    /// DES watchdog timeout for transfer stalls, simulated seconds.
    pub stall_timeout_s: f64,
    /// Rollback budget: divergences recovered before giving up.
    pub max_rollbacks: u32,
    /// In-memory snapshot cadence, epochs (clamped to ≥ 1).
    pub snapshot_every: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            retry: RetryPolicy::default(),
            stall_timeout_s: 1.0,
            max_rollbacks: 4,
            snapshot_every: 1,
        }
    }
}

/// Static liveness annotation of the supervisor's blocking protocol,
/// consumed by the `cumf-analyze` deadlock/liveness pass: the watchdog
/// timeout that must strictly dominate any certified healthy wait
/// chain (so a contended-but-progressing transfer is never declared
/// stalled), and the bounded retry/rollback budgets that make recovery
/// terminate instead of livelocking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogAnno {
    /// Source anchor of the annotated protocol.
    pub anchor: &'static str,
    /// Watchdog timeout raced against transfers, simulated seconds.
    pub timeout_s: f64,
    /// Retry attempts before giving up (clamped ≥ 1: bounded).
    pub max_attempts: u32,
    /// Total backoff if every attempt fails, simulated seconds.
    pub total_backoff_s: f64,
    /// Checkpoint rollbacks recovered before giving up.
    pub max_rollbacks: u32,
}

impl SupervisorConfig {
    /// This configuration's [`WatchdogAnno`], the supervisor-side input
    /// to the deadlock analyzer's liveness certificate.
    pub fn liveness_anno(&self) -> WatchdogAnno {
        WatchdogAnno {
            anchor: "crates/core/src/faults/supervisor.rs::TrainSupervisor",
            timeout_s: self.stall_timeout_s,
            max_attempts: self.retry.max_attempts.max(1),
            total_backoff_s: self.retry.total_backoff_s(),
            max_rollbacks: self.max_rollbacks,
        }
    }
}

/// Output of a supervised partitioned run that completed (possibly after
/// recoveries).
#[derive(Debug, Clone)]
pub struct SupervisedResult<E: Element> {
    /// Learned row factors.
    pub p: FactorMatrix<E>,
    /// Learned column factors.
    pub q: FactorMatrix<E>,
    /// Bias terms, when the biased model was trained.
    pub bias: Option<BiasTerms>,
    /// Convergence trace of the committed epochs.
    pub trace: Trace,
    /// Per-epoch timing breakdowns of the committed epochs.
    pub timings: Vec<EpochTiming>,
    /// The full fault/recovery event log.
    pub log: RecoveryLog,
    /// Simulated GPUs still alive at the end of the run.
    pub gpus_used: u32,
    /// Measured slowdown after the first degradation: mean committed
    /// epoch seconds after ÷ before (1.0 when nothing degraded).
    pub throughput_hit: f64,
    /// Rollbacks performed.
    pub rollbacks: u32,
}

/// Captures the would-be resume state after each epoch, so the supervisor
/// can commit an epoch without re-deriving pipeline internals.
struct TailCapture {
    state: Option<ResumeState>,
}

impl<E: Element> EpochObserver<E> for TailCapture {
    fn on_epoch_end(&mut self, ctx: &EpochCtx<'_>, _model: &EngineModel<E>) -> PipelineControl {
        self.state = Some(ResumeState {
            next_epoch: ctx.epoch + 1,
            updates: ctx.total_updates,
            sim_seconds: ctx.total_sim_seconds,
            trace: ctx.trace.clone(),
            lr: Some(ctx.lr),
        });
        PipelineControl::Continue
    }
}

/// Wraps the training entry points with validation, fault injection, and
/// recovery. Construct with [`FaultPlan::new`] for a plain supervised run
/// (validation and recovery policies, no injected faults).
#[derive(Debug, Clone)]
pub struct TrainSupervisor {
    /// Recovery-policy configuration.
    pub supervision: SupervisorConfig,
    /// Faults to inject, if any.
    pub plan: FaultPlan,
}

impl TrainSupervisor {
    /// A supervisor with the given policies and fault schedule.
    pub fn new(supervision: SupervisorConfig, plan: FaultPlan) -> Self {
        TrainSupervisor { supervision, plan }
    }

    /// Typed-error front door to [`crate::solver::train`] /
    /// [`train_resumable`]: misconfigurations the panicking API asserts on
    /// come back as [`TrainError::InvalidConfig`] with the same message,
    /// and checkpoint failures (including a corrupt `--resume` file) as
    /// [`TrainError::Checkpoint`]. The panicking API is untouched — this
    /// is a validation mirror in front of it, not a replacement.
    pub fn train<E: Element>(
        &self,
        train: &CooMatrix,
        test: &CooMatrix,
        config: &SolverConfig,
        time: Option<&crate::solver::TimeModel>,
        checkpoint: Option<&CheckpointSpec>,
    ) -> Result<TrainResult<E>, TrainError> {
        validate_solver(train, config)?;
        Ok(train_resumable(train, test, config, time, checkpoint)?)
    }

    /// Supervised partitioned training: validates the configuration,
    /// injects the fault plan, and recovers by policy. The fault-free
    /// plan reproduces a clean run exactly.
    pub fn train_partitioned<E: Element>(
        &self,
        train: &CooMatrix,
        test: &CooMatrix,
        config: &MultiGpuConfig,
        gpu: &GpuSpec,
        link: &LinkSpec,
    ) -> Result<SupervisedResult<E>, TrainError> {
        validate_multi_gpu(train, config)?;

        let grid = Grid::build(train, config.grid_i, config.grid_j);
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut model: EngineModel<E> = if config.bias {
            EngineModel::init_biased(train, config.k, &mut rng)
        } else {
            EngineModel::init_unbiased(train, config.k, &mut rng)
        };
        let cost = SgdUpdateCost {
            k: config.k,
            precision: if E::BYTES == 2 {
                cumf_gpu_sim::Precision::F16
            } else {
                cumf_gpu_sim::Precision::F32
            },
            rating_access: cumf_gpu_sim::RatingAccess::Streamed,
        };

        let snapshot_every = self.supervision.snapshot_every.max(1);
        let mut resume = ResumeState {
            next_epoch: 0,
            updates: 0,
            sim_seconds: 0.0,
            trace: Trace::default(),
            lr: None,
        };
        let mut snapshot = (model.clone(), resume.clone(), 0usize);
        let mut consumed = vec![false; self.plan.len()];
        let mut log = RecoveryLog::default();
        let mut timings: Vec<EpochTiming> = Vec::new();
        let mut gpus_alive = config.gpus;
        let mut throttle = 1.0f64;
        let mut rollbacks = 0u32;
        let mut degrade_at: Option<usize> = None;
        let gpus_gauge = cumf_obs::gauge(
            "cumf_faults_gpus_alive",
            "Simulated GPUs alive in the supervised run",
        );
        gpus_gauge.set(gpus_alive as f64);

        while resume.next_epoch < config.epochs {
            let epoch = resume.next_epoch;

            // Topology faults fire at the epoch boundary: they change the
            // machine, so the backend is rebuilt rather than decorated.
            for (event, seen) in self.plan.events.iter().zip(consumed.iter_mut()) {
                if *seen || !event.due(epoch, resume.sim_seconds) {
                    continue;
                }
                let kind = event.kind;
                if !kind.is_topology_fault() {
                    continue;
                }
                *seen = true;
                match kind {
                    super::FaultKind::DeviceLoss { gpu: lost } => {
                        log.push(
                            epoch,
                            RecoveryKind::Injected,
                            format!("device-loss: simulated GPU {lost} dropped"),
                        );
                        log.push(
                            epoch,
                            RecoveryKind::Detected,
                            format!("device {lost} missing from ensemble of {gpus_alive}"),
                        );
                        if gpus_alive <= 1 {
                            log.push(epoch, RecoveryKind::Fatal, "no surviving GPU");
                            return Err(TrainError::AllDevicesLost { epoch });
                        }
                        gpus_alive -= 1;
                        gpus_gauge.set(gpus_alive as f64);
                        degrade_at.get_or_insert(timings.len());
                        log.push(
                            epoch,
                            RecoveryKind::Degraded,
                            format!("re-partitioned waves onto {gpus_alive} surviving GPUs"),
                        );
                    }
                    super::FaultKind::SmThrottle { survival } => {
                        let s = survival.clamp(0.05, 1.0);
                        log.push(
                            epoch,
                            RecoveryKind::Injected,
                            format!("sm-throttle: {:.0}% of SMs survive", s * 100.0),
                        );
                        log.push(
                            epoch,
                            RecoveryKind::Detected,
                            "device health probe reports throttled SMs",
                        );
                        throttle *= s;
                        degrade_at.get_or_insert(timings.len());
                        log.push(
                            epoch,
                            RecoveryKind::Degraded,
                            format!(
                                "running on throttled device ({:.0}% capacity)",
                                throttle * 100.0
                            ),
                        );
                    }
                    _ => unreachable!(),
                }
            }

            // One pipeline segment = one epoch, resumed from the committed
            // state, on the (possibly degraded) topology.
            let throttled_gpu;
            let gpu_ref = if throttle < 1.0 {
                throttled_gpu = gpu.throttled(throttle);
                &throttled_gpu
            } else {
                gpu
            };
            let fatal: FatalFlag = FatalFlag::default();
            let inner = PartitionedBackend::new(
                train,
                grid.clone(),
                gpus_alive,
                config.workers_per_gpu,
                config.batch,
                config.overlap,
                cost,
                gpu_ref,
                link,
                ChaCha8Rng::seed_from_u64(config.seed),
            )
            .with_epoch_seed(config.seed);
            let mut backend = FaultyPartitionedBackend::new(
                inner,
                self.plan.clone(),
                consumed.clone(),
                self.supervision.retry,
                self.supervision.stall_timeout_s,
                fatal.clone(),
                resume.sim_seconds,
            );
            let mut time = BackendTime;
            let mut guard = DivergenceGuard::new(config.divergence_ceiling).with_model_scan();
            let mut tail = TailCapture { state: None };
            let mut observers: Vec<&mut dyn EpochObserver<E>> = vec![&mut guard, &mut tail];
            let pipeline = EpochPipeline {
                label: "supervised",
                epochs: epoch + 1,
                lambda: config.lambda,
                schedule: config.schedule.clone(),
            };
            let run = pipeline.run(
                &mut model,
                &mut backend,
                &mut time,
                &mut observers,
                test,
                Some(resume.clone()),
            );
            consumed = backend.consumed().to_vec();
            log.extend(backend.take_log());

            if let Some(f) = fatal.borrow().as_ref() {
                return Err(TrainError::TransferFailed {
                    epoch: f.epoch,
                    attempts: f.attempts,
                });
            }

            if run.diverged {
                log.push(
                    epoch,
                    RecoveryKind::Detected,
                    format!(
                        "divergence stop at epoch {epoch} (rmse {:.3e}, non-finite {})",
                        run.trace.final_rmse().unwrap_or(f64::NAN),
                        model.non_finite_count()
                    ),
                );
                if rollbacks >= self.supervision.max_rollbacks {
                    log.push(
                        epoch,
                        RecoveryKind::Fatal,
                        format!("rollback budget ({rollbacks}) exhausted"),
                    );
                    return Err(TrainError::Unrecoverable { epoch, rollbacks });
                }
                rollbacks += 1;
                let (snap_model, snap_resume, snap_timings) = &snapshot;
                model = snap_model.clone();
                resume = snap_resume.clone();
                timings.truncate(*snap_timings);
                log.push(
                    epoch,
                    RecoveryKind::RolledBack,
                    format!(
                        "restored snapshot at epoch {} (factors + learning-rate state)",
                        resume.next_epoch
                    ),
                );
                continue;
            }

            // Commit the epoch.
            timings.extend(run.timings);
            resume = tail
                .state
                .take()
                .expect("a non-diverged segment ran exactly one epoch");
            if resume.next_epoch.is_multiple_of(snapshot_every) {
                snapshot = (model.clone(), resume.clone(), timings.len());
            }
        }

        let throughput_hit = match degrade_at {
            Some(b) if b > 0 && b < timings.len() => {
                let before: f64 = timings[..b].iter().map(|t| t.seconds).sum::<f64>() / b as f64;
                let after: f64 = timings[b..].iter().map(|t| t.seconds).sum::<f64>()
                    / (timings.len() - b) as f64;
                if before > 0.0 {
                    after / before
                } else {
                    1.0
                }
            }
            _ => 1.0,
        };
        if degrade_at.is_some() {
            cumf_obs::gauge(
                "cumf_faults_throughput_hit",
                "Mean epoch-seconds ratio after/before the first degradation",
            )
            .set(throughput_hit);
        }

        Ok(SupervisedResult {
            p: model.p,
            q: model.q,
            bias: model.bias,
            trace: resume.trace,
            timings,
            log,
            gpus_used: gpus_alive,
            throughput_hit,
            rollbacks,
        })
    }
}

/// Mirrors the assertions of [`crate::solver::train`] and the scheduling
/// streams it builds, producing [`TrainError::InvalidConfig`] with the
/// exact panic message instead of unwinding.
fn validate_solver(train: &CooMatrix, config: &SolverConfig) -> Result<(), TrainError> {
    let fail = |m: String| Err(TrainError::InvalidConfig(m));
    if config.k == 0 {
        return fail("k must be positive".into());
    }
    if train.is_empty() {
        return fail("training set is empty".into());
    }
    let (m, n) = (train.rows() as usize, train.cols() as usize);
    match config.scheme {
        Scheme::Wavefront { workers, cols } => {
            let (workers, cols) = (workers as usize, cols as usize);
            if workers == 0 {
                return fail("need at least one worker".into());
            }
            if cols < 2 * workers {
                return fail(format!(
                    "wavefront needs cols >= 2*workers for deadlock freedom \
                     (got {cols} cols, {workers} workers)"
                ));
            }
            if workers > m.max(1) {
                return fail("more workers than rows".into());
            }
            if cols > n.max(1) {
                return fail("more columns than items".into());
            }
        }
        Scheme::LibmfTable { workers, a } => {
            let (workers, a) = (workers as usize, a as usize);
            if workers == 0 {
                return fail("need at least one worker".into());
            }
            if a == 0 {
                return fail("grid dimension must be positive".into());
            }
            if a > m || a > n {
                return fail(format!("grid {a} exceeds matrix {m}x{n}"));
            }
        }
        Scheme::Hogwild { workers } | Scheme::BatchHogwild { workers, .. } => {
            if workers == 0 {
                return fail("need at least one worker".into());
            }
        }
        Scheme::Serial => {}
    }
    Ok(())
}

/// Mirrors the assertions of [`crate::multi_gpu::train_partitioned`] and
/// [`Grid::build`].
fn validate_multi_gpu(train: &CooMatrix, config: &MultiGpuConfig) -> Result<(), TrainError> {
    let fail = |m: String| Err(TrainError::InvalidConfig(m));
    if train.is_empty() {
        return fail("training set is empty".into());
    }
    if config.gpus < 1 {
        return fail("need at least one GPU".into());
    }
    if config.enforce_grid_rule
        && config.gpus > 1
        && (config.grid_i < 2 * config.gpus || config.grid_j < 2 * config.gpus)
    {
        return fail(format!(
            "grid {}x{} too small for {} GPUs (need >= {}x{})",
            config.grid_i,
            config.grid_j,
            config.gpus,
            2 * config.gpus,
            2 * config.gpus
        ));
    }
    if config.grid_i == 0 || config.grid_j == 0 {
        return fail("grid must be at least 1x1".into());
    }
    if config.grid_i > train.rows() || config.grid_j > train.cols() {
        return fail(format!(
            "grid {}x{} exceeds matrix {}x{}",
            config.grid_i,
            config.grid_j,
            train.rows(),
            train.cols()
        ));
    }
    if config.workers_per_gpu == 0 {
        return fail("need at least one worker".into());
    }
    Ok(())
}
