//! The fault-injecting epoch backend.
//!
//! [`FaultyPartitionedBackend`] decorates the §6 partitioned backend and
//! realises the per-epoch faults of a [`FaultPlan`] at the seams they
//! belong to:
//!
//! * **transfer corruption** — the hand-off segment is digested, bit-flips
//!   are applied in place, and the checksum mismatch drives the bounded
//!   retry loop (a clean delivery restores the digested truth copy, so a
//!   recovered run trains on exactly the fault-free numbers);
//! * **transfer stalls** — a DES race between the transfer-completion
//!   event and a watchdog timeout ([`detect_stall`]); permanent stalls
//!   exhaust the retry budget and raise the fatal flag the supervisor
//!   turns into a typed error;
//! * **NaN storms** — deterministic P rows are poisoned after the epoch's
//!   updates; the pipeline's model scan catches them and the supervisor
//!   rolls back;
//! * **LR spikes** — that epoch's γ is multiplied before delegation.
//!
//! Topology faults (device loss, SM throttling) are *not* handled here:
//! they change the backend itself, so the supervisor applies them at
//! segment boundaries by rebuilding the partitioned backend.
//!
//! Every injected event is marked consumed in a flag vector the supervisor
//! carries across rollbacks and rebuilds — a consumed fault never
//! re-fires, which is what makes the post-rollback re-execution reproduce
//! the fault-free trajectory.

use std::cell::RefCell;
use std::rc::Rc;

use cumf_rng::{ChaCha8Rng, Rng, SeedableRng};

use crate::engine::{EngineModel, EpochBackend, EpochOutcome, PartitionedBackend};
use crate::feature::Element;

use super::retry::{detect_stall, RetryPolicy, StallVerdict};
use super::{FaultKind, FaultPlan, RecoveryKind, RecoveryLog};

/// An unrecoverable fault, reported through the shared fatal flag so the
/// supervisor can stop the pipeline and surface a typed error.
#[derive(Debug, Clone, PartialEq)]
pub struct FatalFault {
    /// Epoch the fault became unrecoverable at.
    pub epoch: u32,
    /// Attempts spent before giving up.
    pub attempts: u32,
    /// Human-readable description.
    pub detail: String,
}

/// Shared fatal-fault slot: set by the backend mid-epoch, polled by the
/// supervisor's stop observer after the epoch. Plain `Rc` — the epoch
/// pipeline drives backend and observers from one thread.
pub type FatalFlag = Rc<RefCell<Option<FatalFault>>>;

/// [`PartitionedBackend`] with a deterministic fault schedule layered on.
pub struct FaultyPartitionedBackend<'a, E: Element> {
    inner: PartitionedBackend<'a, E>,
    plan: FaultPlan,
    consumed: Vec<bool>,
    retry: RetryPolicy,
    stall_timeout_s: f64,
    log: RecoveryLog,
    fatal: FatalFlag,
    sim_seconds: f64,
}

impl<'a, E: Element> FaultyPartitionedBackend<'a, E> {
    /// Wraps `inner` with the given schedule. `consumed` carries one-shot
    /// state across supervisor rebuilds (pass `vec![false; plan.len()]`
    /// for a fresh run); `sim_offset` seeds the backend's simulated clock
    /// for sim-time triggers (the resume state's accumulated seconds).
    pub fn new(
        inner: PartitionedBackend<'a, E>,
        plan: FaultPlan,
        consumed: Vec<bool>,
        retry: RetryPolicy,
        stall_timeout_s: f64,
        fatal: FatalFlag,
        sim_offset: f64,
    ) -> Self {
        assert_eq!(
            consumed.len(),
            plan.len(),
            "consumed flags must match the plan"
        );
        FaultyPartitionedBackend {
            inner,
            plan,
            consumed,
            retry,
            stall_timeout_s,
            log: RecoveryLog::default(),
            fatal,
            sim_seconds: sim_offset,
        }
    }

    /// The recovery events logged so far by this wrapper.
    pub fn log(&self) -> &RecoveryLog {
        &self.log
    }

    /// Drains the logged events (the supervisor folds them into the
    /// run-wide log after each pipeline segment).
    pub fn take_log(&mut self) -> RecoveryLog {
        std::mem::take(&mut self.log)
    }

    /// One-shot consumption flags, index-aligned with the plan's events.
    pub fn consumed(&self) -> &[bool] {
        &self.consumed
    }

    /// Per-event RNG for victim selection — seeded from the retry seed and
    /// the event index, so the same plan corrupts the same entries no
    /// matter when (or on which rebuilt backend) the event fires.
    fn event_rng(&self, event_idx: usize) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(self.retry.seed ^ 0xC0_55E5 ^ (event_idx as u64).rotate_left(17))
    }

    /// Transfer corruption: digest the hand-off segment, flip bits, detect
    /// the mismatch, and retry with backoff until the link delivers clean
    /// data or the attempt budget runs out. Returns simulated seconds of
    /// backoff spent; on exhaustion, sets the fatal flag.
    fn inject_corruption(
        &mut self,
        event_idx: usize,
        epoch: u32,
        flips: u32,
        clean_after: u32,
        model: &mut EngineModel<E>,
    ) -> f64 {
        let rows = model.q.rows().clamp(1, 8);
        let truth = model.q.segment(0..rows);
        let want = truth.digest();
        let mut rng = self.event_rng(event_idx);
        for f in 0..flips.max(1) {
            let r = rng.gen_range(0..rows);
            let c = rng.gen_range(0..model.q.k()) as usize;
            let row = model.q.row_mut(r);
            let bits = row[c].to_f32().to_bits() ^ (1 << (22 + (f % 8)));
            row[c] = E::from_f32(f32::from_bits(bits));
        }
        let got = model.q.segment(0..rows).digest();
        self.log.push(
            epoch,
            RecoveryKind::Injected,
            format!("transfer-corruption: {flips} bit flips on Q hand-off segment"),
        );
        self.log.push(
            epoch,
            RecoveryKind::Detected,
            format!("hand-off checksum mismatch: want {want:#018x}, got {got:#018x}"),
        );
        let mut backoff = 0.0;
        // Attempt 1 was the corrupted delivery; each retry is a fresh
        // transfer that arrives clean from `clean_after` onwards.
        for attempt in 2..=self.retry.max_attempts.max(1) {
            let delay = self.retry.delay(attempt - 2);
            backoff += delay;
            self.log.push(
                epoch,
                RecoveryKind::Retried,
                format!("transfer retry {attempt} after {delay:.4}s backoff"),
            );
            if attempt >= clean_after {
                model.q.write_segment(0, &truth);
                debug_assert_eq!(model.q.segment(0..rows).digest(), want);
                self.log.push(
                    epoch,
                    RecoveryKind::Recovered,
                    format!("clean delivery on attempt {attempt}, checksum {want:#018x} verified"),
                );
                return backoff;
            }
            self.log.push(
                epoch,
                RecoveryKind::Detected,
                format!("retry {attempt} still corrupt"),
            );
        }
        // Budget exhausted: restore the truth copy (the corrupt data must
        // never train) and raise the fatal flag.
        model.q.write_segment(0, &truth);
        let attempts = self.retry.max_attempts.max(1);
        self.log.push(
            epoch,
            RecoveryKind::Fatal,
            format!("transfer still corrupt after {attempts} attempts"),
        );
        *self.fatal.borrow_mut() = Some(FatalFault {
            epoch,
            attempts,
            detail: format!("hand-off corrupt after {attempts} attempts"),
        });
        backoff
    }

    /// Transfer stall: DES watchdog race, then bounded retry. Returns the
    /// simulated seconds lost (watchdog waits plus backoff); on a
    /// permanent stall the budget runs out and the fatal flag is set.
    fn inject_stall(&mut self, epoch: u32, stall_s: f64, permanent: bool) -> f64 {
        self.log.push(
            epoch,
            RecoveryKind::Injected,
            format!(
                "transfer-stall: {stall_s:.3}s ({})",
                if permanent { "permanent" } else { "transient" }
            ),
        );
        match detect_stall(stall_s, self.stall_timeout_s) {
            StallVerdict::Completed { after_s } => {
                // Slow but inside the watchdog: no retry needed.
                self.log.push(
                    epoch,
                    RecoveryKind::Recovered,
                    format!("transfer completed at {after_s:.3}s, within watchdog"),
                );
                after_s
            }
            StallVerdict::TimedOut { detected_at_s } => {
                self.log.push(
                    epoch,
                    RecoveryKind::Detected,
                    format!("DES watchdog fired at {detected_at_s:.3}s"),
                );
                let mut lost = detected_at_s;
                for attempt in 2..=self.retry.max_attempts.max(1) {
                    let delay = self.retry.delay(attempt - 2);
                    lost += delay;
                    self.log.push(
                        epoch,
                        RecoveryKind::Retried,
                        format!("transfer retry {attempt} after {delay:.4}s backoff"),
                    );
                    if !permanent {
                        self.log.push(
                            epoch,
                            RecoveryKind::Recovered,
                            format!("retry {attempt} delivered"),
                        );
                        return lost;
                    }
                    // The link is down: every retry burns a full watchdog.
                    lost += self.stall_timeout_s;
                    self.log.push(
                        epoch,
                        RecoveryKind::Detected,
                        format!("retry {attempt} timed out"),
                    );
                }
                let attempts = self.retry.max_attempts.max(1);
                self.log.push(
                    epoch,
                    RecoveryKind::Fatal,
                    format!("link down: {attempts} attempts all timed out"),
                );
                *self.fatal.borrow_mut() = Some(FatalFault {
                    epoch,
                    attempts,
                    detail: format!("transfer stalled after {attempts} attempts"),
                });
                lost
            }
        }
    }

    /// NaN storm: poison deterministic P rows after the epoch's updates.
    /// Detection is the pipeline's post-epoch model scan; recovery is the
    /// supervisor's rollback.
    fn inject_nan_storm(
        &mut self,
        event_idx: usize,
        epoch: u32,
        rows: u32,
        model: &mut EngineModel<E>,
    ) {
        let mut rng = self.event_rng(event_idx);
        let total = model.p.rows();
        let mut hit = Vec::new();
        for _ in 0..rows.max(1).min(total) {
            let r = rng.gen_range(0..total);
            for e in model.p.row_mut(r) {
                *e = E::from_f32(f32::NAN);
            }
            hit.push(r);
        }
        self.log.push(
            epoch,
            RecoveryKind::Injected,
            format!("nan-storm: poisoned P rows {hit:?}"),
        );
    }
}

impl<E: Element> EpochBackend<E> for FaultyPartitionedBackend<'_, E> {
    fn run_epoch(
        &mut self,
        epoch: u32,
        gamma: f32,
        lambda: f32,
        model: &mut EngineModel<E>,
    ) -> EpochOutcome {
        // Once fatal, run clean: the supervisor's stop observer ends the
        // pipeline after this epoch and the result is discarded.
        if self.fatal.borrow().is_some() {
            return self.inner.run_epoch(epoch, gamma, lambda, model);
        }

        // Collect the events due this epoch (one-shot: consumed events,
        // including those consumed before a rollback, never re-fire).
        let due: Vec<usize> = (0..self.plan.events.len())
            .filter(|&i| !self.consumed[i] && self.plan.events[i].due(epoch, self.sim_seconds))
            .collect();

        let mut gamma = gamma;
        let mut extra_s = 0.0;
        let mut post_nan: Option<(usize, u32)> = None;
        for &i in &due {
            self.consumed[i] = true;
            let kind = self.plan.events[i].kind;
            match kind {
                FaultKind::LrSpike { factor } => {
                    self.log.push(
                        epoch,
                        RecoveryKind::Injected,
                        format!("lr-spike: gamma x{factor} this epoch"),
                    );
                    gamma *= factor;
                }
                FaultKind::TransferCorruption { flips, clean_after } => {
                    extra_s += self.inject_corruption(i, epoch, flips, clean_after, model);
                }
                FaultKind::TransferStall { stall_s, permanent } => {
                    extra_s += self.inject_stall(epoch, stall_s, permanent);
                }
                FaultKind::NanStorm { rows } => post_nan = Some((i, rows)),
                FaultKind::DeviceLoss { .. } | FaultKind::SmThrottle { .. } => {
                    unreachable!(
                        "topology fault {} reached the injector; the supervisor \
                         handles those at segment boundaries",
                        kind.name()
                    );
                }
            }
            if self.fatal.borrow().is_some() {
                break;
            }
        }

        let mut out = self.inner.run_epoch(epoch, gamma, lambda, model);

        if let Some((i, rows)) = post_nan {
            if self.fatal.borrow().is_none() {
                self.inject_nan_storm(i, epoch, rows, model);
            }
        }

        // Charge the recovery time to the epoch's simulated clock.
        if extra_s > 0.0 {
            out.backend_seconds = Some(out.backend_seconds.unwrap_or(0.0) + extra_s);
            if let Some(t) = out.timing.as_mut() {
                t.seconds += extra_s;
                t.transfer_seconds += extra_s;
            }
        }
        self.sim_seconds += out.backend_seconds.unwrap_or(0.0);
        out
    }

    fn workers(&self) -> u32 {
        self.inner.workers()
    }

    fn name(&self) -> &'static str {
        "faulty-partitioned"
    }
}
