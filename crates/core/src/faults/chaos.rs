//! The chaos scenario matrix behind `cumf chaos`.
//!
//! Runs a fixed fault × policy matrix through the [`TrainSupervisor`] on
//! a seeded synthetic dataset and checks the robustness contract:
//!
//! * every scenario is **deterministic** — each one runs twice and the
//!   two recovery-event logs (or typed errors) must digest identically;
//! * every *recovering* scenario ends within a relative RMSE tolerance
//!   of the fault-free baseline (most are bit-exact: retries redeliver
//!   the fault-free bytes and rollbacks replay the fault-free epochs;
//!   only device loss changes the wave schedule and merely stays within
//!   tolerance);
//! * scenarios injecting unrecoverable faults must fail with the right
//!   **typed error**, not spin or panic;
//! * no scenario may leak non-finite values into the returned factors.

use cumf_data::synth::{generate, SynthConfig};
use cumf_gpu_sim::{PCIE3_X16, TITAN_X_MAXWELL};

use crate::lrate::Schedule;
use crate::multi_gpu::MultiGpuConfig;

use super::retry::RetryPolicy;
use super::supervisor::{SupervisorConfig, TrainError, TrainSupervisor};
use super::{fnv1a64, FaultKind, FaultPlan};

/// Options of a chaos run.
#[derive(Debug, Clone, Copy)]
pub struct ChaosOptions {
    /// Master seed: dataset, model init, fault schedules, retry jitter.
    pub seed: u64,
    /// Smaller dataset and fewer epochs (the CI profile).
    pub quick: bool,
    /// Relative RMSE tolerance vs the fault-free baseline.
    pub tolerance: f64,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            seed: 42,
            quick: false,
            tolerance: 0.02,
        }
    }
}

/// How a scenario ended.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioOutcome {
    /// The run completed; RMSE and recovery counts are available.
    Recovered {
        /// Final test RMSE.
        rmse: f64,
        /// Relative RMSE delta vs the fault-free baseline.
        rel_delta: f64,
        /// Rollbacks performed.
        rollbacks: u32,
        /// Transfer retries performed.
        retries: usize,
        /// Simulated GPUs the run finished on.
        gpus_used: u32,
        /// Post-degradation slowdown factor (1.0 when undamaged).
        throughput_hit: f64,
    },
    /// The run surfaced a typed error.
    Failed {
        /// `Display` rendering of the [`TrainError`].
        error: String,
    },
}

/// One row of the chaos matrix, after execution.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario name (the fault).
    pub name: &'static str,
    /// Recovery policy exercised.
    pub policy: &'static str,
    /// What happened.
    pub outcome: ScenarioOutcome,
    /// Recovery-log events (0 for the baseline).
    pub events: usize,
    /// Digest of the recovery log (or of the error text).
    pub log_digest: u64,
    /// Both executions produced the same digest.
    pub deterministic: bool,
    /// The scenario met its contract.
    pub passed: bool,
    /// One-line explanation when failed (empty when passed).
    pub detail: String,
}

/// The full chaos report.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Fault-free baseline RMSE every scenario is compared against.
    pub baseline_rmse: f64,
    /// Relative tolerance applied.
    pub tolerance: f64,
    /// All scenario rows (including the baseline).
    pub scenarios: Vec<ScenarioResult>,
    /// True when every scenario passed.
    pub passed: bool,
}

impl ChaosReport {
    /// Renders the recovery report as a text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "chaos matrix: {} scenarios, baseline rmse {:.4}, tolerance {:.1}%\n\n",
            self.scenarios.len(),
            self.baseline_rmse,
            self.tolerance * 100.0
        ));
        out.push_str(&format!(
            "{:<22} {:<16} {:<9} {:>6} {:>9} {:>6} {:<5} result\n",
            "scenario", "policy", "outcome", "events", "rmse", "Δ%", "det"
        ));
        for s in &self.scenarios {
            let (outcome, rmse, delta) = match &s.outcome {
                ScenarioOutcome::Recovered {
                    rmse, rel_delta, ..
                } => (
                    "recover",
                    format!("{rmse:.4}"),
                    format!("{:.2}", rel_delta * 100.0),
                ),
                ScenarioOutcome::Failed { .. } => ("error", "-".into(), "-".into()),
            };
            out.push_str(&format!(
                "{:<22} {:<16} {:<9} {:>6} {:>9} {:>6} {:<5} {}{}\n",
                s.name,
                s.policy,
                outcome,
                s.events,
                rmse,
                delta,
                if s.deterministic { "yes" } else { "NO" },
                if s.passed { "pass" } else { "FAIL" },
                if s.detail.is_empty() {
                    String::new()
                } else {
                    format!(" ({})", s.detail)
                },
            ));
        }
        let recovered = self
            .scenarios
            .iter()
            .filter(|s| matches!(s.outcome, ScenarioOutcome::Recovered { .. }))
            .count();
        out.push_str(&format!(
            "\n{} recovered, {} typed errors, overall: {}\n",
            recovered,
            self.scenarios.len() - recovered,
            if self.passed { "PASS" } else { "FAIL" }
        ));
        out
    }
}

/// What a scenario is required to do.
enum Expect {
    /// Complete within tolerance of the baseline.
    Recover,
    /// Complete on exactly this many surviving GPUs, within tolerance.
    RecoverOnGpus(u32),
    /// Fail with a [`TrainError`] whose text contains the needle.
    FailWith(&'static str),
}

struct Scenario {
    name: &'static str,
    policy: &'static str,
    plan: FaultPlan,
    supervision: SupervisorConfig,
    expect: Expect,
}

fn scenarios(seed: u64, epochs: u32) -> Vec<Scenario> {
    let retry = |max_attempts: u32| RetryPolicy {
        max_attempts,
        seed,
        ..RetryPolicy::default()
    };
    let policy = |max_attempts: u32| SupervisorConfig {
        retry: retry(max_attempts),
        ..SupervisorConfig::default()
    };
    let mid = epochs / 2;
    vec![
        Scenario {
            name: "fault-free",
            policy: "none",
            plan: FaultPlan::new(),
            supervision: policy(4),
            expect: Expect::Recover,
        },
        Scenario {
            name: "lr-spike",
            policy: "rollback",
            plan: FaultPlan::new().at_epoch(mid, FaultKind::LrSpike { factor: 500.0 }),
            supervision: policy(4),
            expect: Expect::Recover,
        },
        Scenario {
            name: "nan-storm",
            policy: "rollback",
            plan: FaultPlan::new().at_epoch(mid + 1, FaultKind::NanStorm { rows: 3 }),
            supervision: policy(4),
            expect: Expect::Recover,
        },
        Scenario {
            name: "transfer-corruption",
            policy: "retry",
            plan: FaultPlan::new().at_epoch(
                2,
                FaultKind::TransferCorruption {
                    flips: 4,
                    clean_after: 2,
                },
            ),
            supervision: policy(4),
            expect: Expect::Recover,
        },
        Scenario {
            name: "corruption-burst",
            policy: "patient-retry",
            plan: FaultPlan::new().at_epoch(
                mid,
                FaultKind::TransferCorruption {
                    flips: 16,
                    clean_after: 4,
                },
            ),
            supervision: policy(6),
            expect: Expect::Recover,
        },
        Scenario {
            name: "corruption-dead-link",
            policy: "bounded-retry",
            plan: FaultPlan::new().at_epoch(
                2,
                FaultKind::TransferCorruption {
                    flips: 4,
                    clean_after: 99,
                },
            ),
            supervision: policy(3),
            expect: Expect::FailWith("transfer failed permanently"),
        },
        Scenario {
            name: "transfer-stall",
            policy: "watchdog-retry",
            plan: FaultPlan::new().at_epoch(
                3,
                FaultKind::TransferStall {
                    stall_s: 5.0,
                    permanent: false,
                },
            ),
            supervision: policy(4),
            expect: Expect::Recover,
        },
        Scenario {
            name: "stall-permanent",
            policy: "bounded-retry",
            plan: FaultPlan::new().at_epoch(
                3,
                FaultKind::TransferStall {
                    stall_s: 5.0,
                    permanent: true,
                },
            ),
            supervision: policy(3),
            expect: Expect::FailWith("transfer failed permanently"),
        },
        Scenario {
            name: "device-loss",
            policy: "degrade",
            plan: FaultPlan::new().at_epoch(mid, FaultKind::DeviceLoss { gpu: 1 }),
            supervision: policy(4),
            expect: Expect::RecoverOnGpus(1),
        },
        Scenario {
            name: "sm-throttle",
            policy: "degrade",
            plan: FaultPlan::new().at_epoch(2, FaultKind::SmThrottle { survival: 0.5 }),
            supervision: policy(4),
            expect: Expect::Recover,
        },
        Scenario {
            name: "corruption+nan-storm",
            policy: "retry+rollback",
            plan: FaultPlan::new()
                .at_epoch(
                    2,
                    FaultKind::TransferCorruption {
                        flips: 4,
                        clean_after: 2,
                    },
                )
                .at_epoch(mid + 2, FaultKind::NanStorm { rows: 2 }),
            supervision: policy(4),
            expect: Expect::Recover,
        },
    ]
}

/// Runs the chaos matrix and returns the recovery report.
pub fn run_chaos(opts: &ChaosOptions) -> ChaosReport {
    let (samples, epochs) = if opts.quick { (8_000, 8) } else { (20_000, 14) };
    let d = generate(&SynthConfig {
        m: 300,
        n: 240,
        k_true: 4,
        train_samples: samples,
        test_samples: samples / 10,
        noise_std: 0.1,
        row_skew: 0.4,
        col_skew: 0.4,
        rating_offset: 1.0,
        seed: opts.seed ^ 0xDA7A,
    });
    let mut config = MultiGpuConfig::new(6, 4, 4, 2);
    config.epochs = epochs;
    config.workers_per_gpu = 8;
    config.batch = 32;
    config.schedule = Schedule::paper_default(0.1, 0.1);
    config.lambda = 0.02;
    config.seed = opts.seed;

    // Fault-free baseline through the same supervised path, so every
    // comparison is apples-to-apples.
    let baseline = TrainSupervisor::new(SupervisorConfig::default(), FaultPlan::new())
        .train_partitioned::<f32>(&d.train, &d.test, &config, &TITAN_X_MAXWELL, &PCIE3_X16)
        .expect("fault-free baseline must train");
    let baseline_rmse = baseline
        .trace
        .final_rmse()
        .expect("baseline produced no trace");

    let mut rows = Vec::new();
    let mut all_pass = true;
    for sc in scenarios(opts.seed, epochs) {
        let run = |_: u32| -> (Result<_, TrainError>, u64, usize) {
            let sup = TrainSupervisor::new(sc.supervision, sc.plan.clone());
            let r = sup.train_partitioned::<f32>(
                &d.train,
                &d.test,
                &config,
                &TITAN_X_MAXWELL,
                &PCIE3_X16,
            );
            let (digest, events) = match &r {
                Ok(res) => (res.log.digest(), res.log.events.len()),
                Err(e) => (fnv1a64(e.to_string().as_bytes()), 0),
            };
            (r, digest, events)
        };
        let (first, digest_a, events) = run(0);
        let (_, digest_b, _) = run(1);
        let deterministic = digest_a == digest_b;

        let (outcome, mut passed, mut detail) = match first {
            Ok(res) => {
                let rmse = res.trace.final_rmse().unwrap_or(f64::NAN);
                let rel_delta = ((rmse - baseline_rmse) / baseline_rmse).abs();
                let leak = res.p.non_finite_count() + res.q.non_finite_count();
                let retries = res.log.count(super::RecoveryKind::Retried);
                let outcome = ScenarioOutcome::Recovered {
                    rmse,
                    rel_delta,
                    rollbacks: res.rollbacks,
                    retries,
                    gpus_used: res.gpus_used,
                    throughput_hit: res.throughput_hit,
                };
                let (mut ok, mut why) = match sc.expect {
                    Expect::Recover => (true, String::new()),
                    Expect::RecoverOnGpus(g) => (
                        res.gpus_used == g,
                        format!("expected {g} surviving GPUs, got {}", res.gpus_used),
                    ),
                    Expect::FailWith(needle) => {
                        (false, format!("expected error containing {needle:?}"))
                    }
                };
                if ok && rel_delta > opts.tolerance {
                    ok = false;
                    why = format!(
                        "rmse {rmse:.4} off baseline {baseline_rmse:.4} by {:.2}%",
                        rel_delta * 100.0
                    );
                }
                if ok && leak > 0 {
                    ok = false;
                    why = format!("{leak} non-finite factors leaked");
                }
                if ok {
                    why.clear();
                }
                (outcome, ok, why)
            }
            Err(e) => {
                let text = e.to_string();
                let (ok, why) = match sc.expect {
                    Expect::FailWith(needle) => (
                        text.contains(needle),
                        format!("error {text:?} missing {needle:?}"),
                    ),
                    _ => (false, format!("unexpected error: {text}")),
                };
                (
                    ScenarioOutcome::Failed { error: text },
                    ok,
                    if ok { String::new() } else { why },
                )
            }
        };
        if !deterministic {
            passed = false;
            detail = format!("non-deterministic: digests {digest_a:#018x} vs {digest_b:#018x}");
        }
        all_pass &= passed;
        rows.push(ScenarioResult {
            name: sc.name,
            policy: sc.policy,
            outcome,
            events,
            log_digest: digest_a,
            deterministic,
            passed,
            detail,
        });
    }

    ChaosReport {
        baseline_rmse,
        tolerance: opts.tolerance,
        scenarios: rows,
        passed: all_pass,
    }
}
