//! Retry policy and DES-based stall detection.
//!
//! Two small deterministic machines used by the injection layer:
//!
//! * [`RetryPolicy`] — bounded exponential backoff with seeded jitter.
//!   The full delay sequence is a pure function of `(policy, seed)`, so a
//!   supervised run retries on *exactly* the same simulated schedule every
//!   time — which is what makes recovery-log digests comparable across
//!   runs.
//! * [`detect_stall`] — races a transfer-completion event against a
//!   watchdog timeout on a [`cumf_des::EventQueue`]. This is the same
//!   event-calendar machinery the GPU simulator runs on, so stall
//!   detection lives on the simulated clock, not the wall clock.

use cumf_des::{EventQueue, SimTime};
use cumf_rng::{ChaCha8Rng, Rng, SeedableRng};

/// Bounded exponential backoff with deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts (the first try counts; `3` means one try plus two
    /// retries). Clamped to at least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry, in simulated seconds.
    pub base_delay_s: f64,
    /// Multiplier applied per retry (exponential backoff).
    pub multiplier: f64,
    /// Ceiling on a single backoff delay, in simulated seconds.
    pub max_delay_s: f64,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a factor drawn
    /// uniformly from `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Seed for the jitter stream — the entire delay sequence is a pure
    /// function of the policy and this seed.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay_s: 0.010,
            multiplier: 2.0,
            max_delay_s: 0.500,
            jitter: 0.25,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// Backoff delay (simulated seconds) before retry `retry_index`
    /// (0-based: index 0 is the delay between the first failure and the
    /// first retry). Deterministic: the jitter stream is re-seeded from
    /// `(seed, retry_index)` on every call, so delays can be queried in
    /// any order and always agree.
    pub fn delay(&self, retry_index: u32) -> f64 {
        let raw = self.base_delay_s * self.multiplier.powi(retry_index as i32);
        let capped = raw.min(self.max_delay_s);
        if self.jitter <= 0.0 {
            return capped;
        }
        let mut rng =
            ChaCha8Rng::seed_from_u64(self.seed ^ (0x9e37_79b9_7f4a_7c15u64 ^ retry_index as u64));
        let scale = 1.0 + self.jitter * (rng.gen::<f64>() * 2.0 - 1.0);
        capped * scale
    }

    /// The full jittered delay sequence this policy would walk through
    /// before giving up (`max_attempts - 1` entries).
    pub fn delays(&self) -> Vec<f64> {
        (0..self.max_attempts.max(1) - 1)
            .map(|i| self.delay(i))
            .collect()
    }

    /// Total backoff time if every attempt fails, in simulated seconds.
    pub fn total_backoff_s(&self) -> f64 {
        self.delays().iter().sum()
    }
}

/// Outcome of racing a transfer against its watchdog.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StallVerdict {
    /// The transfer finished before the watchdog fired.
    Completed {
        /// Simulated seconds the transfer took.
        after_s: f64,
    },
    /// The watchdog fired first: the transfer is considered stalled.
    TimedOut {
        /// Simulated time at which the stall was detected (= the timeout).
        detected_at_s: f64,
    },
}

/// Event payloads of the stall-detection calendar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StallEvent {
    Completion,
    Watchdog,
}

/// Races a transfer that will take `transfer_s` simulated seconds against
/// a watchdog set to `timeout_s`, on a fresh DES event calendar. Ties go
/// to the completion event: it is scheduled first, and equal-timestamp
/// events fire in schedule order (the documented FIFO tie-breaking
/// contract of [`EventQueue::schedule`]), so a transfer landing exactly
/// on the deadline still counts as delivered. Disarming the watchdog
/// after the race is an O(1) generation-checked cancel — a no-op if the
/// watchdog already fired.
pub fn detect_stall(transfer_s: f64, timeout_s: f64) -> StallVerdict {
    let mut q: EventQueue<StallEvent> = EventQueue::new();
    q.schedule(SimTime::from_secs(transfer_s), StallEvent::Completion);
    let watchdog = q.schedule(SimTime::from_secs(timeout_s), StallEvent::Watchdog);
    match q.pop() {
        Some((t, StallEvent::Completion)) => {
            // The transfer won the race; the watchdog is disarmed.
            q.cancel(watchdog);
            StallVerdict::Completed {
                after_s: t.as_secs(),
            }
        }
        Some((t, StallEvent::Watchdog)) => StallVerdict::TimedOut {
            detected_at_s: t.as_secs(),
        },
        None => unreachable!("two events were scheduled"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_deterministic_and_bounded() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_delay_s: 0.01,
            multiplier: 2.0,
            max_delay_s: 0.05,
            jitter: 0.25,
            seed: 42,
        };
        let a = p.delays();
        let b = p.delays();
        assert_eq!(a, b, "same policy+seed must yield the same sequence");
        assert_eq!(a.len(), 4);
        for (i, d) in a.iter().enumerate() {
            let raw = (0.01 * 2.0f64.powi(i as i32)).min(0.05);
            assert!(
                *d >= raw * 0.75 && *d <= raw * 1.25,
                "delay {i} = {d} outside jitter band around {raw}"
            );
        }
        let other = RetryPolicy { seed: 43, ..p };
        assert_ne!(a, other.delays(), "different seed, different jitter");
    }

    #[test]
    fn zero_jitter_is_pure_exponential() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_delay_s: 0.01,
            multiplier: 3.0,
            max_delay_s: 10.0,
            jitter: 0.0,
            seed: 7,
        };
        assert_eq!(p.delays(), vec![0.01, 0.03, 0.09]);
        assert!((p.total_backoff_s() - 0.13).abs() < 1e-12);
    }

    #[test]
    fn stall_detection_races_on_the_sim_clock() {
        match detect_stall(0.2, 1.0) {
            StallVerdict::Completed { after_s } => assert!((after_s - 0.2).abs() < 1e-9),
            v => panic!("fast transfer misjudged: {v:?}"),
        }
        match detect_stall(5.0, 1.0) {
            StallVerdict::TimedOut { detected_at_s } => {
                assert!((detected_at_s - 1.0).abs() < 1e-9)
            }
            v => panic!("stalled transfer misjudged: {v:?}"),
        }
        // Tie goes to the completion event.
        match detect_stall(1.0, 1.0) {
            StallVerdict::Completed { after_s } => assert!((after_s - 1.0).abs() < 1e-9),
            v => panic!("deadline-exact transfer misjudged: {v:?}"),
        }
    }
}
