//! Feature (factor) matrices `P` (m×k) and `Q` (n×k).
//!
//! Row-major storage so one SGD update touches two contiguous k-element
//! rows — the access the CUDA kernel coalesces across its 32 threads (§4).
//! Storage is generic over the element type: `f32`, or [`F16`] for the
//! paper's half-precision mode.

use cumf_rng::Rng;

use crate::half::F16;

/// A storage element of a factor matrix: converts to/from f32 compute form.
pub trait Element: Copy + Send + Sync + Default + 'static {
    /// Bytes per stored element (2 for f16, 4 for f32) — what the
    /// bandwidth model charges.
    const BYTES: usize;
    /// Human-readable name for reports.
    const NAME: &'static str;
    /// Narrowing store.
    fn from_f32(x: f32) -> Self;
    /// Widening load.
    fn to_f32(self) -> f32;
}

impl Element for f32 {
    const BYTES: usize = 4;
    const NAME: &'static str = "f32";
    #[inline(always)]
    fn from_f32(x: f32) -> Self {
        x
    }
    #[inline(always)]
    fn to_f32(self) -> f32 {
        self
    }
}

impl Element for F16 {
    const BYTES: usize = 2;
    const NAME: &'static str = "f16";
    #[inline(always)]
    fn from_f32(x: f32) -> Self {
        F16::from_f32(x)
    }
    #[inline(always)]
    fn to_f32(self) -> f32 {
        self.to_f32()
    }
}

/// A dense rows×k factor matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorMatrix<E: Element> {
    rows: u32,
    k: u32,
    data: Vec<E>,
}

impl<E: Element> FactorMatrix<E> {
    /// Creates a zero-initialised matrix.
    pub fn zeros(rows: u32, k: u32) -> Self {
        assert!(k > 0, "feature dimension must be positive");
        FactorMatrix {
            rows,
            k,
            data: vec![E::default(); rows as usize * k as usize],
        }
    }

    /// Algorithm 1, line 3: initialise entries `U(0, sqrt(1/k))`.
    ///
    /// The positive uniform init biases early predictions towards positive
    /// ratings, matching LIBMF/cuMF initialisation.
    pub fn random_init<R: Rng>(rows: u32, k: u32, rng: &mut R) -> Self {
        let mut m = Self::zeros(rows, k);
        let scale = (1.0 / k as f32).sqrt();
        for e in &mut m.data {
            *e = E::from_f32(rng.gen_range(0.0..scale));
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Feature dimension k.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: u32) -> &[E] {
        let k = self.k as usize;
        let base = r as usize * k;
        &self.data[base..base + k]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: u32) -> &mut [E] {
        let k = self.k as usize;
        let base = r as usize * k;
        &mut self.data[base..base + k]
    }

    /// Loads row `r` widened to f32 into `out` (length k).
    #[inline]
    pub fn load_row(&self, r: u32, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.k as usize);
        for (o, e) in out.iter_mut().zip(self.row(r)) {
            *o = e.to_f32();
        }
    }

    /// Stores `vals` (length k) narrowed into row `r`.
    #[inline]
    pub fn store_row(&mut self, r: u32, vals: &[f32]) {
        debug_assert_eq!(vals.len(), self.k as usize);
        for (e, &v) in self.row_mut(r).iter_mut().zip(vals) {
            *e = E::from_f32(v);
        }
    }

    /// Raw element slice (row-major).
    pub fn as_slice(&self) -> &[E] {
        &self.data
    }

    /// Total storage bytes — what a staging transfer of this matrix costs.
    pub fn storage_bytes(&self) -> usize {
        self.data.len() * E::BYTES
    }

    /// Converts the full matrix to f32 (for evaluation / export).
    pub fn to_f32_vec(&self) -> Vec<f32> {
        self.data.iter().map(|e| e.to_f32()).collect()
    }

    /// Builds a matrix from an f32 slice (narrowing into E).
    pub fn from_f32_slice(rows: u32, k: u32, vals: &[f32]) -> Self {
        assert_eq!(vals.len(), rows as usize * k as usize, "shape mismatch");
        FactorMatrix {
            rows,
            k,
            data: vals.iter().map(|&v| E::from_f32(v)).collect(),
        }
    }

    /// Number of non-finite (NaN/Inf) entries in the matrix. Zero on a
    /// healthy model; the fault-injection supervisor's post-epoch scan
    /// treats any positive count as a gradient storm to roll back.
    pub fn non_finite_count(&self) -> usize {
        self.data.iter().filter(|e| !e.to_f32().is_finite()).count()
    }

    /// FNV-1a digest over the element bit patterns, row-major. This is the
    /// hand-off checksum of the fault layer: a P/Q segment is digested
    /// before a (simulated) transfer and verified after, so corruption on
    /// the link is detected rather than silently trained on.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for e in &self.data {
            for b in e.to_f32().to_bits().to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// Copies rows `range` out as a new matrix (a P/Q *segment* for the
    /// multi-GPU partitioning of §6.1).
    pub fn segment(&self, range: std::ops::Range<u32>) -> FactorMatrix<E> {
        let k = self.k as usize;
        let lo = range.start as usize * k;
        let hi = range.end as usize * k;
        FactorMatrix {
            rows: range.end - range.start,
            k: self.k,
            data: self.data[lo..hi].to_vec(),
        }
    }

    /// Writes a segment back at row offset `at` (the D2H merge of §6.1).
    pub fn write_segment(&mut self, at: u32, seg: &FactorMatrix<E>) {
        assert_eq!(seg.k, self.k, "k mismatch");
        assert!(at + seg.rows <= self.rows, "segment out of range");
        let k = self.k as usize;
        let lo = at as usize * k;
        self.data[lo..lo + seg.data.len()].copy_from_slice(&seg.data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_rng::ChaCha8Rng;
    use cumf_rng::SeedableRng;

    #[test]
    fn zeros_shape() {
        let m: FactorMatrix<f32> = FactorMatrix::zeros(5, 3);
        assert_eq!(m.rows(), 5);
        assert_eq!(m.k(), 3);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(m.storage_bytes(), 60);
    }

    #[test]
    fn random_init_respects_scale() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let m: FactorMatrix<f32> = FactorMatrix::random_init(100, 16, &mut rng);
        let scale = (1.0f32 / 16.0).sqrt();
        for &x in m.as_slice() {
            assert!((0.0..scale).contains(&x), "{x} outside [0, {scale})");
        }
        // Mean should approach scale/2.
        let mean: f32 = m.as_slice().iter().sum::<f32>() / 1600.0;
        assert!((mean - scale / 2.0).abs() < 0.01);
    }

    #[test]
    fn row_round_trip() {
        let mut m: FactorMatrix<f32> = FactorMatrix::zeros(4, 3);
        m.store_row(2, &[1.0, 2.0, 3.0]);
        let mut out = [0.0f32; 3];
        m.load_row(2, &mut out);
        assert_eq!(out, [1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn f16_storage_quantises() {
        let mut m: FactorMatrix<F16> = FactorMatrix::zeros(2, 2);
        m.store_row(0, &[0.3333333, 1.0]);
        let mut out = [0.0f32; 2];
        m.load_row(0, &mut out);
        assert!((out[0] - 0.3333333).abs() < 3e-4); // quantised
        assert_eq!(out[1], 1.0); // exact
        assert_eq!(m.storage_bytes(), 8); // half the f32 bytes
        assert_eq!(F16::NAME, "f16");
    }

    #[test]
    fn segments_round_trip() {
        let vals: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let m: FactorMatrix<f32> = FactorMatrix::from_f32_slice(4, 3, &vals);
        let seg = m.segment(1..3);
        assert_eq!(seg.rows(), 2);
        assert_eq!(seg.row(0), &[3.0, 4.0, 5.0]);
        let mut m2: FactorMatrix<f32> = FactorMatrix::zeros(4, 3);
        m2.write_segment(1, &seg);
        assert_eq!(m2.row(1), &[3.0, 4.0, 5.0]);
        assert_eq!(m2.row(2), &[6.0, 7.0, 8.0]);
        assert_eq!(m2.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "segment out of range")]
    fn write_segment_bounds_checked() {
        let seg: FactorMatrix<f32> = FactorMatrix::zeros(3, 2);
        let mut m: FactorMatrix<f32> = FactorMatrix::zeros(4, 2);
        m.write_segment(2, &seg);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_slice_checks_shape() {
        let _: FactorMatrix<f32> = FactorMatrix::from_f32_slice(2, 2, &[0.0; 5]);
    }
}
