//! Bounded-staleness certification for the lock-free update paths.
//!
//! Hogwild-style execution (§3, Fig 9c of the paper) is only sound when
//! the staleness of each read factor row — the number of writes to that
//! row between a read and the write the read feeds — is *bounded*, and
//! the learning rate is small enough that the bounded overshoot cannot
//! compound into divergence (§7.5's `s ≪ min(m, n)` precondition). Until
//! now that was an assumption; this module makes it a certificate.
//!
//! Every shipped update path is lifted into a small **asynchrony IR**:
//!
//! * a writer set (how many concurrent writers race on the factors),
//! * a row-access [`Footprint`] (lock-serialised rows, disjoint row
//!   partitions, or genuinely shared rows),
//! * the [`SyncEdge`] bounding how far a writer can run ahead of the
//!   others (per-row lock release, a barrier every `interval` updates,
//!   or nothing at all).
//!
//! [`staleness_bound`] computes the worst-case per-row staleness τ from
//! that description — `(writers − 1) × interval` for barrier-synced
//! shared rows, `0` for lock-serialised or disjoint footprints, and
//! *unbounded* (refuted) for shared rows with no synchronisation edge.
//! [`certify_staleness`] then checks the lr·τ safety condition against
//! the run's configured [`Schedule`] and either emits a [`StaleCert`]
//! (FNV-1a digest, τ, the condition value) or a [`StaleWitness`].
//!
//! The shipped paths are declared next to their executors in
//! [`crate::concurrent::UPDATE_PATHS`] — the same in-source annotation
//! pattern as `LOCK_SITES` — and the `cumf-analyze` staleness section
//! cross-validates every τ claimed here by exhaustive interleaving
//! model checking (with broken twins that must be refuted).
//! [`resolve_stale_mode`] is the solver-side consumer: a racy default
//! mode is only honoured when its staleness certifies; a refuted
//! configuration is downgraded to [`ExecMode::Sequential`], mirroring
//! what `resolve_exec_mode` does for conflict refutations.

use crate::concurrent::ExecMode;
use crate::lrate::{LearningRate, Schedule};

/// Row-access footprint of an update path: which factor rows concurrent
/// writers can touch at the same time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Footprint {
    /// Every row access happens under that row's (stripe) lock.
    RowLocked,
    /// Writers are assigned pairwise-disjoint row sets (grid blocks).
    DisjointRows,
    /// Any writer may touch any row at any time (Hogwild!).
    SharedRows,
}

impl Footprint {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Footprint::RowLocked => "row-locked",
            Footprint::DisjointRows => "disjoint-rows",
            Footprint::SharedRows => "shared-rows",
        }
    }
}

/// The synchronisation edge bounding how many writes another writer can
/// publish between a read and the write that read feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncEdge {
    /// Each write is published under a per-row lock held across the
    /// read-modify-write, so the read a write feeds is never stale.
    LockRelease,
    /// A full barrier every `interval` updates per writer (interval 1 =
    /// the round-lockstep stale-additive engine; interval = the
    /// per-epoch quota = the epoch join of the threaded executor).
    Barrier {
        /// Updates each writer performs between consecutive barriers.
        interval: u64,
    },
    /// No synchronisation between a read and the write it feeds.
    Unsynced,
}

/// The annotation-level synchronisation shape of a shipped update path,
/// as declared in [`crate::concurrent::UPDATE_PATHS`]. The analyzer
/// maps these to concrete [`SyncEdge`]s when it instantiates a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncKind {
    /// Per-row stripe locks held across each read-modify-write.
    LockRelease,
    /// The round-lockstep barrier of the stale-additive engine
    /// (snapshot → delta → additive commit, one sample per worker per
    /// round): a barrier every 1 update.
    RoundBarrier,
    /// The epoch join of the real-thread executor: free-running threads
    /// between epoch boundaries, a barrier every per-epoch quota.
    EpochJoin,
    /// Eq. 6 grid independence: blocks scheduled concurrently share no
    /// row or column segment, so cross-writer row sets are disjoint.
    GridIndependence,
}

impl SyncKind {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            SyncKind::LockRelease => "lock-release",
            SyncKind::RoundBarrier => "round-barrier",
            SyncKind::EpochJoin => "epoch-join",
            SyncKind::GridIndependence => "grid-independence",
        }
    }
}

/// One statically-declared update path: the asynchrony shape of an
/// executor, living next to the code it describes (the analogue of
/// `LockSiteAnno` for staleness instead of lock order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdatePathAnno {
    /// Path name (one staleness certificate per path).
    pub path: &'static str,
    /// Row-access footprint of the concurrent writers.
    pub footprint: Footprint,
    /// The synchronisation edge bounding writer overlap.
    pub sync: SyncKind,
    /// Source anchor of the executor (`file::item`).
    pub anchor: &'static str,
    /// Why the shape is what it is.
    pub note: &'static str,
}

/// A concrete instantiation of an update path: an annotation plus the
/// run parameters the bound depends on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathSpec {
    /// Path name.
    pub name: &'static str,
    /// Concurrent writers.
    pub writers: u32,
    /// Row-access footprint.
    pub footprint: Footprint,
    /// Synchronisation edge, with its concrete interval.
    pub sync: SyncEdge,
    /// `min(m, n)` of the factored matrix — the §7.5 denominator.
    pub min_dim: u32,
    /// Source anchor of the executor.
    pub anchor: &'static str,
}

impl PathSpec {
    /// The solver's racy default: the round-lockstep stale-additive
    /// engine (snapshot reads, additive commits, barrier every round).
    pub fn solver_hogwild(writers: u32, min_dim: u32) -> Self {
        PathSpec {
            name: "solver-hogwild",
            writers,
            footprint: Footprint::SharedRows,
            sync: SyncEdge::Barrier { interval: 1 },
            min_dim,
            anchor: "crates/core/src/engine/exec.rs::stale_additive_epoch",
        }
    }
}

/// Worst-case per-row staleness bound τ for a path: the maximum number
/// of writes another writer can publish to a row between a read of that
/// row and the write the read feeds. `None` means unbounded — shared
/// rows with no synchronisation edge cannot be certified.
pub fn staleness_bound(spec: &PathSpec) -> Option<u64> {
    match (spec.footprint, spec.sync) {
        // Lock-serialised or disjoint rows: the read a write feeds is
        // never stale, whatever the writer count.
        (Footprint::RowLocked, _) | (Footprint::DisjointRows, _) => Some(0),
        (Footprint::SharedRows, SyncEdge::LockRelease) => Some(0),
        // Between a read and its write, each of the other writers can
        // publish at most `interval` updates before the barrier stops it.
        (Footprint::SharedRows, SyncEdge::Barrier { interval }) => {
            Some(u64::from(spec.writers.saturating_sub(1)) * interval)
        }
        (Footprint::SharedRows, SyncEdge::Unsynced) => None,
    }
}

/// The largest learning rate `schedule` can reach over `epochs` epochs
/// (decay schedules peak at epoch 0; bold-driver can climb by `up`
/// every epoch in the worst case).
pub fn gamma_max(schedule: &Schedule, epochs: u32) -> f32 {
    match *schedule {
        Schedule::Fixed(g) => g,
        Schedule::NomadDecay { .. } => LearningRate::new(schedule.clone()).gamma(0),
        Schedule::BoldDriver { initial, up, .. } => {
            initial * up.powi(epochs.saturating_sub(1) as i32)
        }
    }
}

/// A bounded-staleness certificate for one update path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaleCert {
    /// Path the certificate covers.
    pub path: &'static str,
    /// Concurrent writers.
    pub writers: u32,
    /// Worst-case per-row staleness bound τ.
    pub tau: u64,
    /// The largest learning rate the schedule can reach.
    pub gamma_max: f32,
    /// The lr·τ safety condition value (must be < 1): `γ_max · (W−1) ·
    /// 20 / min_dim` — §7.5's `s ≪ min(m, n)` rule with the
    /// [`crate::partition::Grid::hogwild_safe_workers`] 1/20 margin,
    /// scaled by the configured learning rate. The writer-overlap term
    /// `W−1` is the per-round component of τ; the batch-length factor
    /// certifies boundedness but does not enter the condition, because
    /// a batch streams (almost surely distinct) rows in storage order.
    pub lr_tau: f64,
    /// FNV-1a digest of `(path, writers, τ, γ_max, min_dim)`.
    pub digest: u64,
}

impl std::fmt::Display for StaleCert {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: τ={} over {} writers, γ_max {:.4}, lr·τ condition {:.4} < 1 (digest {:016x})",
            self.path, self.tau, self.writers, self.gamma_max, self.lr_tau, self.digest
        )
    }
}

/// A staleness refutation: why the path's configuration cannot be
/// certified (unbounded τ, or a violated lr·τ condition).
#[derive(Debug, Clone, PartialEq)]
pub struct StaleWitness {
    /// Path that was refuted.
    pub path: &'static str,
    /// Concurrent writers.
    pub writers: u32,
    /// The staleness bound, when one exists (`None` = unbounded).
    pub tau: Option<u64>,
    /// The largest learning rate the schedule can reach.
    pub gamma_max: f32,
    /// The violated condition value (`infinity` when τ is unbounded).
    pub lr_tau: f64,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for StaleWitness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path, self.detail)
    }
}

/// Outcome of certifying one update path's staleness.
#[derive(Debug, Clone, PartialEq)]
pub enum StaleVerdict {
    /// τ is finite and the lr·τ condition holds.
    Certified(StaleCert),
    /// τ is unbounded, or the configured schedule violates lr·τ.
    Refuted(StaleWitness),
}

impl StaleVerdict {
    /// True for [`StaleVerdict::Certified`].
    pub fn is_certified(&self) -> bool {
        matches!(self, StaleVerdict::Certified(_))
    }

    /// The certificate, if the path certified.
    pub fn certificate(&self) -> Option<&StaleCert> {
        match self {
            StaleVerdict::Certified(c) => Some(c),
            StaleVerdict::Refuted(_) => None,
        }
    }

    /// The refutation, if the path was refuted.
    pub fn witness(&self) -> Option<&StaleWitness> {
        match self {
            StaleVerdict::Certified(_) => None,
            StaleVerdict::Refuted(w) => Some(w),
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv1a(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv1a_str(mut h: u64, s: &str) -> u64 {
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The lr·τ safety condition value for a bounded path: `γ_max · (W−1) ·
/// 20 / min_dim`. At γ = 1 this is exactly §7.5's `s − 1 < min(m, n) /
/// 20` safe-worker rule ([`crate::partition::Grid::hogwild_safe_workers`]);
/// smaller learning rates buy proportionally more concurrent writers.
pub fn lr_tau_condition(writers: u32, min_dim: u32, gamma: f32) -> f64 {
    assert!(min_dim > 0, "staleness condition needs a non-empty matrix");
    f64::from(gamma) * f64::from(writers.saturating_sub(1)) * 20.0 / f64::from(min_dim)
}

/// Certifies one update path's staleness against the run's learning-rate
/// schedule: computes τ from the asynchrony IR, evaluates the lr·τ
/// condition with the largest rate the schedule can reach over `epochs`,
/// and emits a certificate or a concrete refutation.
pub fn certify_staleness(spec: &PathSpec, schedule: &Schedule, epochs: u32) -> StaleVerdict {
    let g = gamma_max(schedule, epochs);
    let Some(tau) = staleness_bound(spec) else {
        return StaleVerdict::Refuted(StaleWitness {
            path: spec.name,
            writers: spec.writers,
            tau: None,
            gamma_max: g,
            lr_tau: f64::INFINITY,
            detail: format!(
                "unbounded staleness: {} writers on {} rows with no synchronisation edge ({})",
                spec.writers,
                spec.footprint.name(),
                spec.anchor
            ),
        });
    };
    let lr_tau = if tau == 0 {
        0.0
    } else {
        lr_tau_condition(spec.writers, spec.min_dim, g)
    };
    if lr_tau >= 1.0 {
        return StaleVerdict::Refuted(StaleWitness {
            path: spec.name,
            writers: spec.writers,
            tau: Some(tau),
            gamma_max: g,
            lr_tau,
            detail: format!(
                "lr·τ condition violated: γ_max {:.4} × (W−1)={} × 20 / min_dim={} = {:.4} ≥ 1 \
                 (τ={} is finite but the overshoot compounds — §7.5 needs s ≪ min(m, n))",
                g,
                spec.writers.saturating_sub(1),
                spec.min_dim,
                lr_tau,
                tau
            ),
        });
    }
    let mut h = fnv1a_str(FNV_OFFSET, spec.name);
    h = fnv1a(h, u64::from(spec.writers));
    h = fnv1a(h, tau);
    h = fnv1a(h, u64::from(g.to_bits()));
    h = fnv1a(h, u64::from(spec.min_dim));
    StaleVerdict::Certified(StaleCert {
        path: spec.name,
        writers: spec.writers,
        tau,
        gamma_max: g,
        lr_tau,
        digest: h,
    })
}

/// Resolves the execution mode for a configuration that *defaults* to
/// racy execution: [`ExecMode::StaleAdditive`] is only honoured when the
/// path's staleness certifies under the configured schedule; a refuted
/// configuration is downgraded to [`ExecMode::Sequential`] (serialised —
/// slower, but convergent) and the witness returned. Non-racy defaults
/// pass through untouched.
pub fn resolve_stale_mode(
    spec: &PathSpec,
    schedule: &Schedule,
    epochs: u32,
    default_mode: ExecMode,
) -> (ExecMode, Option<StaleVerdict>) {
    if default_mode != ExecMode::StaleAdditive {
        return (default_mode, None);
    }
    let verdict = certify_staleness(spec, schedule, epochs);
    let mode = match &verdict {
        StaleVerdict::Certified(_) => {
            cumf_obs::counter(
                "cumf_core_stale_certified_total",
                "Racy configurations proven bounded-staleness safe before execution",
            )
            .inc();
            ExecMode::StaleAdditive
        }
        StaleVerdict::Refuted(w) => {
            cumf_obs::counter(
                "cumf_core_stale_refuted_total",
                "Racy configurations refuted by the staleness certifier and serialised",
            )
            .inc();
            eprintln!(
                "warning: racy schedule fails the staleness certificate ({w}); \
                 downgrading to sequential execution"
            );
            ExecMode::Sequential
        }
    };
    (mode, Some(verdict))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared(writers: u32, interval: u64, min_dim: u32) -> PathSpec {
        PathSpec {
            name: "test-path",
            writers,
            footprint: Footprint::SharedRows,
            sync: SyncEdge::Barrier { interval },
            min_dim,
            anchor: "test",
        }
    }

    #[test]
    fn bounds_match_the_ir() {
        assert_eq!(staleness_bound(&shared(8, 1, 100)), Some(7));
        assert_eq!(staleness_bound(&shared(8, 256, 100)), Some(7 * 256));
        let locked = PathSpec {
            footprint: Footprint::RowLocked,
            sync: SyncEdge::LockRelease,
            ..shared(8, 1, 100)
        };
        assert_eq!(staleness_bound(&locked), Some(0));
        let disjoint = PathSpec {
            footprint: Footprint::DisjointRows,
            sync: SyncEdge::Unsynced,
            ..shared(8, 1, 100)
        };
        assert_eq!(staleness_bound(&disjoint), Some(0));
        let unsynced = PathSpec {
            sync: SyncEdge::Unsynced,
            ..shared(8, 1, 100)
        };
        assert_eq!(staleness_bound(&unsynced), None);
    }

    #[test]
    fn gamma_max_covers_every_schedule() {
        assert_eq!(gamma_max(&Schedule::Fixed(0.5), 10), 0.5);
        assert_eq!(
            gamma_max(&Schedule::paper_default(0.08, 0.3), 10),
            0.08,
            "decay peaks at epoch 0"
        );
        let bd = Schedule::BoldDriver {
            initial: 0.1,
            up: 1.05,
            down: 0.5,
        };
        let g = gamma_max(&bd, 5);
        assert!((g - 0.1 * 1.05f32.powi(4)).abs() < 1e-7);
    }

    #[test]
    fn sane_configurations_certify() {
        // The solver test fleet's shape: 8 workers on a 300×200 matrix.
        let v = certify_staleness(
            &PathSpec::solver_hogwild(8, 200),
            &Schedule::paper_default(0.1, 0.1),
            15,
        );
        let c = v.certificate().expect("sane config must certify");
        assert_eq!(c.tau, 7);
        assert!(c.lr_tau < 1.0, "{c}");
        assert_ne!(c.digest, 0);
    }

    #[test]
    fn oversubscription_is_refuted() {
        // §7.5's pathology: 40 workers on a 60×40 matrix at γ = 0.5.
        let v = certify_staleness(&PathSpec::solver_hogwild(40, 40), &Schedule::Fixed(0.5), 15);
        let w = v.witness().expect("oversubscription must refute");
        assert_eq!(w.tau, Some(39), "τ is finite — the *condition* fails");
        assert!(w.lr_tau >= 1.0);
        assert!(w.detail.contains("lr·τ"), "{w}");
    }

    #[test]
    fn unbounded_paths_are_refuted() {
        let spec = PathSpec {
            sync: SyncEdge::Unsynced,
            ..shared(4, 1, 1000)
        };
        let v = certify_staleness(&spec, &Schedule::Fixed(0.001), 1);
        let w = v.witness().expect("no sync edge, no certificate");
        assert_eq!(w.tau, None);
        assert!(w.detail.contains("unbounded"), "{w}");
    }

    #[test]
    fn digest_is_stable_and_parameter_sensitive() {
        let sched = Schedule::Fixed(0.05);
        let d = |writers, min_dim| {
            certify_staleness(&PathSpec::solver_hogwild(writers, min_dim), &sched, 10)
                .certificate()
                .unwrap()
                .digest
        };
        assert_eq!(d(8, 200), d(8, 200));
        assert_ne!(d(8, 200), d(4, 200));
        assert_ne!(d(8, 200), d(8, 400));
    }

    #[test]
    fn resolver_downgrades_refuted_configurations() {
        let sched = Schedule::Fixed(0.5);
        let (mode, v) = resolve_stale_mode(
            &PathSpec::solver_hogwild(40, 40),
            &sched,
            15,
            ExecMode::StaleAdditive,
        );
        assert_eq!(mode, ExecMode::Sequential);
        assert!(v.unwrap().witness().is_some());

        let (mode, v) = resolve_stale_mode(
            &PathSpec::solver_hogwild(8, 200),
            &Schedule::paper_default(0.1, 0.1),
            15,
            ExecMode::StaleAdditive,
        );
        assert_eq!(mode, ExecMode::StaleAdditive);
        assert!(v.unwrap().is_certified());

        // Non-racy defaults pass through without a verdict.
        let (mode, v) = resolve_stale_mode(
            &PathSpec::solver_hogwild(8, 200),
            &sched,
            15,
            ExecMode::Sequential,
        );
        assert_eq!(mode, ExecMode::Sequential);
        assert!(v.is_none());
    }
}
