//! Workload partitioning (§6.1) and blocking convergence analysis (§7.6).
//!
//! For data sets exceeding device memory, cuMF_SGD divides the rating
//! matrix into an `i × j` grid; feature matrices split into `i` P-segments
//! and `j` Q-segments. Blocks sharing no grid row and no grid column are
//! *independent* (Eq. 6) and can be dispatched to different GPUs.
//!
//! This module owns the grid, the independent-block scheduler, the
//! convergence constraints of §7.5
//! (`s ≪ min(⌊m/i⌋, ⌊n/j⌋)`, empirically `s < min/20`), and the
//! feasible-update-order enumeration behind Fig 15.

use cumf_rng::seq::SliceRandom;
use cumf_rng::Rng;

use cumf_data::CooMatrix;

/// Grid coordinates of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockId {
    /// Grid row (P-segment index), `0..i`.
    pub bi: u32,
    /// Grid column (Q-segment index), `0..j`.
    pub bj: u32,
}

/// An `i × j` partition of a rating matrix.
#[derive(Debug, Clone)]
pub struct Grid {
    i: u32,
    j: u32,
    m: u32,
    n: u32,
    /// Sample indices per block, row-major (`bi * j + bj`).
    blocks: Vec<Vec<usize>>,
}

impl Grid {
    /// Partitions `data` into `i × j` equal coordinate ranges.
    pub fn build(data: &CooMatrix, i: u32, j: u32) -> Self {
        assert!(i > 0 && j > 0, "grid must be at least 1x1");
        assert!(
            i <= data.rows() && j <= data.cols(),
            "grid {i}x{j} exceeds matrix {}x{}",
            data.rows(),
            data.cols()
        );
        let m = data.rows();
        let n = data.cols();
        let mut blocks = vec![Vec::new(); (i * j) as usize];
        for (idx, e) in data.iter().enumerate() {
            let bi = ((e.u as u64 * i as u64) / m as u64).min(i as u64 - 1) as u32;
            let bj = ((e.v as u64 * j as u64) / n as u64).min(j as u64 - 1) as u32;
            blocks[(bi * j + bj) as usize].push(idx);
        }
        Grid { i, j, m, n, blocks }
    }

    /// Grid rows.
    pub fn i(&self) -> u32 {
        self.i
    }

    /// Grid columns.
    pub fn j(&self) -> u32 {
        self.j
    }

    /// Total number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Sample indices of a block.
    pub fn block(&self, id: BlockId) -> &[usize] {
        &self.blocks[(id.bi * self.j + id.bj) as usize]
    }

    /// All block ids in row-major order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.i).flat_map(move |bi| (0..self.j).map(move |bj| BlockId { bi, bj }))
    }

    /// Row (user) range of grid row `bi`.
    pub fn row_range(&self, bi: u32) -> std::ops::Range<u32> {
        range_of(self.m, self.i, bi)
    }

    /// Column (item) range of grid column `bj`.
    pub fn col_range(&self, bj: u32) -> std::ops::Range<u32> {
        range_of(self.n, self.j, bj)
    }

    /// Eq. 6: two blocks can update concurrently iff they share neither a
    /// grid row nor a grid column.
    pub fn independent(a: BlockId, b: BlockId) -> bool {
        a.bi != b.bi && a.bj != b.bj
    }

    /// §7.5: the Hogwild! convergence constraint inside one block —
    /// `s ≪ min(⌊m/i⌋, ⌊n/j⌋)`, with the paper's empirical factor of 20.
    pub fn hogwild_safe_workers(&self) -> u32 {
        ((self.m / self.i).min(self.n / self.j) / 20).max(1)
    }

    /// Whether `s` workers per block satisfy the §7.5 convergence rule.
    pub fn convergence_ok(&self, s: u32) -> bool {
        s < (self.m / self.i).min(self.n / self.j) / 20
    }
}

fn range_of(total: u32, parts: u32, idx: u32) -> std::ops::Range<u32> {
    // Matches the block assignment rule `bi = u*i/m`: boundaries at
    // ceil(b*m/i).
    let start = ((idx as u64 * total as u64).div_ceil(parts as u64)) as u32;
    let end = (((idx as u64 + 1) * total as u64).div_ceil(parts as u64)) as u32;
    start..end.max(start)
}

/// Coordinate range of segment `idx` when `total` coordinates split into
/// `parts` equal segments — the exact boundary rule of
/// [`Grid::row_range`]/[`Grid::col_range`] (`bi = u*i/m`, boundaries at
/// `ceil(b*total/parts)`). Public so downstream layers (the serving
/// shards) can reproduce the grid's factor-segment layout without
/// holding rating data.
pub fn segment_range(total: u32, parts: u32, idx: u32) -> std::ops::Range<u32> {
    assert!(parts > 0 && idx < parts, "segment {idx} out of {parts}");
    range_of(total, parts, idx)
}

/// Segment index of coordinate `x` under the same assignment rule as
/// [`Grid::build`] (`bi = x*parts/total`, clamped to the last segment).
pub fn segment_of(total: u32, parts: u32, x: u32) -> u32 {
    assert!(parts > 0 && total > 0, "empty segmentation");
    ((x as u64 * parts as u64) / total as u64).min(parts as u64 - 1) as u32
}

/// A schedule of block *waves*: in each wave, `gpus` mutually independent
/// blocks run concurrently (one per GPU); `None` means that GPU idles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaveSchedule {
    /// `waves[w][g]` = block assigned to GPU `g` in wave `w`.
    pub waves: Vec<Vec<Option<BlockId>>>,
}

impl WaveSchedule {
    /// Total idle GPU-wave slots (load imbalance of the schedule).
    pub fn idle_slots(&self) -> usize {
        self.waves
            .iter()
            .flat_map(|w| w.iter())
            .filter(|b| b.is_none())
            .count()
    }

    /// Number of waves.
    pub fn len(&self) -> usize {
        self.waves.len()
    }

    /// True if the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.waves.is_empty()
    }
}

/// Builds one epoch's wave schedule: step 2 of §6.1 — "when a GPU is idle,
/// randomly select one matrix block from those independent blocks". Every
/// block is scheduled exactly once per epoch.
pub fn schedule_epoch<R: Rng>(grid: &Grid, gpus: u32, rng: &mut R) -> WaveSchedule {
    assert!(gpus > 0);
    let mut remaining: Vec<BlockId> = grid.block_ids().collect();
    remaining.shuffle(rng);
    let mut waves = Vec::new();
    while !remaining.is_empty() {
        let mut wave: Vec<Option<BlockId>> = Vec::with_capacity(gpus as usize);
        let mut chosen: Vec<BlockId> = Vec::with_capacity(gpus as usize);
        for _ in 0..gpus {
            let pick = remaining
                .iter()
                .position(|&b| chosen.iter().all(|&c| Grid::independent(b, c)));
            match pick {
                Some(pos) => {
                    let b = remaining.swap_remove(pos);
                    chosen.push(b);
                    wave.push(Some(b));
                }
                None => wave.push(None),
            }
        }
        waves.push(wave);
    }
    WaveSchedule { waves }
}

/// Fig 15: counts feasible block start orders on an `a × a` grid with `s`
/// always-busy workers.
///
/// A start order (a permutation of all blocks) is *feasible* if blocks can
/// be started in that order such that (1) a block starts only when it is
/// independent of all currently-running blocks and (2) no worker ever
/// idles while unstarted blocks remain (all `s` workers busy whenever
/// possible). Blocks are unit-duration; when a worker finishes it
/// immediately starts the next block in the order. Returns
/// `(feasible, total)` order counts.
///
/// For the paper's 2×2 grid with 2 workers this yields 8 of 24.
pub fn count_feasible_orders(a: u32, s: u32) -> (u64, u64) {
    assert!(a >= 1 && s >= 1);
    assert!(a <= 3, "enumeration is factorial; a <= 3 only");
    let blocks: Vec<BlockId> = (0..a)
        .flat_map(|bi| (0..a).map(move |bj| BlockId { bi, bj }))
        .collect();
    let mut feasible = 0u64;
    let mut total = 0u64;
    permute(&mut blocks.clone(), 0, &mut |perm| {
        total += 1;
        if order_is_feasible(perm, s as usize) {
            feasible += 1;
        }
    });
    (feasible, total)
}

fn permute<F: FnMut(&[BlockId])>(items: &mut [BlockId], at: usize, f: &mut F) {
    if at == items.len() {
        f(items);
        return;
    }
    for i in at..items.len() {
        items.swap(at, i);
        permute(items, at + 1, f);
        items.swap(at, i);
    }
}

/// Simulates unit-duration waves: in each wave the next blocks of the
/// order start as long as (a) a worker is free and (b) the block is
/// independent of the blocks already running in this wave. Because blocks
/// are unit duration, all running blocks finish together at wave end.
/// The order is feasible iff every wave (except possibly the last) keeps
/// all `s` workers busy and blocks start exactly in the given order.
fn order_is_feasible(order: &[BlockId], s: usize) -> bool {
    let mut next = 0;
    while next < order.len() {
        // Start as many blocks of the order prefix as possible this wave.
        let mut running: Vec<BlockId> = Vec::with_capacity(s);
        while running.len() < s && next < order.len() {
            let candidate = order[next];
            if running.iter().all(|&r| Grid::independent(candidate, r)) {
                running.push(candidate);
                next += 1;
            } else {
                break;
            }
        }
        if running.is_empty() {
            return false; // Head of order conflicts with nothing running: impossible
        }
        let remaining = order.len() - next;
        if running.len() < s && remaining > 0 {
            // A worker idles while work remains: infeasible under the
            // "all workers busy" requirement.
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_rng::ChaCha8Rng;
    use cumf_rng::SeedableRng;

    fn matrix(m: u32, n: u32, nnz: usize) -> CooMatrix {
        let mut coo = CooMatrix::new(m, n);
        for t in 0..nnz {
            coo.push((t as u32 * 31) % m, (t as u32 * 17) % n, 1.0);
        }
        coo
    }

    #[test]
    fn grid_covers_all_samples() {
        let data = matrix(100, 80, 5000);
        let grid = Grid::build(&data, 4, 5);
        let total: usize = grid.block_ids().map(|b| grid.block(b).len()).sum();
        assert_eq!(total, 5000);
        assert_eq!(grid.block_count(), 20);
    }

    #[test]
    fn blocks_respect_ranges() {
        let data = matrix(100, 80, 5000);
        let grid = Grid::build(&data, 4, 5);
        for id in grid.block_ids() {
            let rr = grid.row_range(id.bi);
            let cr = grid.col_range(id.bj);
            for &s in grid.block(id) {
                let e = data.get(s);
                assert!(rr.contains(&e.u), "sample row {} not in {rr:?}", e.u);
                assert!(cr.contains(&e.v), "sample col {} not in {cr:?}", e.v);
            }
        }
    }

    #[test]
    fn ranges_tile_the_matrix() {
        let grid = Grid::build(&matrix(103, 77, 100), 4, 3);
        let mut covered = 0;
        for bi in 0..4 {
            covered += grid.row_range(bi).len();
        }
        assert_eq!(covered, 103);
        let mut covered = 0;
        for bj in 0..3 {
            covered += grid.col_range(bj).len();
        }
        assert_eq!(covered, 77);
        // Ranges are contiguous and ordered.
        assert_eq!(grid.row_range(0).start, 0);
        for bi in 1..4 {
            assert_eq!(grid.row_range(bi).start, grid.row_range(bi - 1).end);
        }
    }

    #[test]
    fn independence_rule() {
        let a = BlockId { bi: 0, bj: 0 };
        assert!(Grid::independent(a, BlockId { bi: 1, bj: 1 }));
        assert!(!Grid::independent(a, BlockId { bi: 0, bj: 1 })); // same row
        assert!(!Grid::independent(a, BlockId { bi: 1, bj: 0 })); // same col
        assert!(!Grid::independent(a, a));
    }

    #[test]
    fn convergence_constraint() {
        let data = matrix(40_000, 4_000, 100);
        let grid = Grid::build(&data, 1, 1);
        // min(m, n)/20 = 200.
        assert_eq!(grid.hogwild_safe_workers(), 200);
        assert!(grid.convergence_ok(100));
        assert!(!grid.convergence_ok(200));
        let grid4 = Grid::build(&data, 1, 4);
        // min(40000, 1000)/20 = 50.
        assert!(!grid4.convergence_ok(96));
        assert!(grid4.convergence_ok(49));
    }

    #[test]
    fn schedule_covers_each_block_once() {
        let data = matrix(64, 64, 1000);
        let grid = Grid::build(&data, 4, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let sched = schedule_epoch(&grid, 2, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for wave in &sched.waves {
            let blocks: Vec<BlockId> = wave.iter().flatten().copied().collect();
            for pair in blocks.windows(2) {
                assert!(Grid::independent(pair[0], pair[1]));
            }
            for b in blocks {
                assert!(seen.insert(b), "block {b:?} scheduled twice");
            }
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn single_gpu_schedule_has_no_idles() {
        let data = matrix(64, 64, 1000);
        let grid = Grid::build(&data, 4, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let sched = schedule_epoch(&grid, 1, &mut rng);
        assert_eq!(sched.len(), 4);
        assert_eq!(sched.idle_slots(), 0);
    }

    /// §7.6 / Fig 15: a 2×2 grid with 2 workers admits only 8 of 24 orders.
    #[test]
    fn fig15_two_by_two_grid() {
        let (feasible, total) = count_feasible_orders(2, 2);
        assert_eq!(total, 24);
        assert_eq!(feasible, 8);
    }

    #[test]
    fn single_worker_makes_every_order_feasible() {
        let (feasible, total) = count_feasible_orders(2, 1);
        assert_eq!(feasible, total);
    }

    #[test]
    fn three_by_three_grid_restricts_orders() {
        let (feasible, total) = count_feasible_orders(3, 3);
        assert_eq!(total, 362_880); // 9!
        assert!(feasible > 0);
        // The fraction of feasible orders shrinks as s approaches a.
        let (feasible2, _) = count_feasible_orders(3, 2);
        assert!(feasible < feasible2);
        assert!(feasible2 < total);
    }

    #[test]
    #[should_panic(expected = "exceeds matrix")]
    fn grid_larger_than_matrix_rejected() {
        let _ = Grid::build(&matrix(4, 4, 10), 8, 2);
    }

    #[test]
    fn segment_helpers_match_the_grid() {
        let grid = Grid::build(&matrix(103, 77, 100), 4, 3);
        for bi in 0..4 {
            assert_eq!(segment_range(103, 4, bi), grid.row_range(bi));
        }
        for bj in 0..3 {
            assert_eq!(segment_range(77, 3, bj), grid.col_range(bj));
        }
        // Every coordinate lands in the segment whose range contains it.
        for u in 0..103 {
            let s = segment_of(103, 4, u);
            assert!(segment_range(103, 4, s).contains(&u), "u={u} s={s}");
        }
    }
}
