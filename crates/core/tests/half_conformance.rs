//! Exhaustive conformance suite for the from-scratch IEEE 754 binary16
//! implementation in `cumf_core::half`.
//!
//! The reference converter here is *independent* of `half.rs`: it
//! decodes bit patterns with textbook field arithmetic in `f64` and
//! rounds `f32 → f16` by binary-searching the (monotone) positive
//! pattern space and adjudicating ties to the even pattern. Agreement
//! is then checked exhaustively:
//!
//! * all 2¹⁶ bit patterns round-trip `f16 → f32 → f16` bit-for-bit;
//! * `from_f32` matches the reference on every pattern's value, every
//!   midpoint between consecutive representable values (the RNE tie
//!   cases, subnormals included), both overflow boundaries around
//!   65504/65520, and a deterministic pseudo-random f32 sweep;
//! * NaNs stay NaN in both directions.

use cumf_core::half::{F16_MAX_F32, F16_MIN_POSITIVE_SUBNORMAL_F32};
use cumf_core::F16;

/// Independent binary16 decode: sign × 2^(e−15) × (1 + m/1024) for
/// normals, sign × 2^(−14) × (m/1024) for subnormals. Exact in `f64`.
fn ref_decode(bits: u16) -> f64 {
    let sign = if bits & 0x8000 != 0 { -1.0 } else { 1.0 };
    let exp = (bits >> 10) & 0x1F;
    let man = f64::from(bits & 0x3FF);
    match exp {
        0 => sign * man / 1024.0 * (2.0f64).powi(-14),
        0x1F => {
            if man == 0.0 {
                sign * f64::INFINITY
            } else {
                f64::NAN
            }
        }
        _ => sign * (1.0 + man / 1024.0) * (2.0f64).powi(i32::from(exp) - 15),
    }
}

/// Independent `f32 → f16` with round-to-nearest-even.
///
/// Positive finite binary16 patterns `0x0000..=0x7BFF` decode to
/// strictly increasing values, so nearest-even reduces to a binary
/// search for the bracketing pair plus exact `f64` distance
/// comparison; a tie picks the even (LSB-zero) pattern. The overflow
/// tie at 65520 = (65504 + 65536)/2 rounds to infinity because the
/// infinity pattern `0x7C00` is even.
fn ref_encode(x: f32) -> u16 {
    if x.is_nan() {
        return 0x7E00; // canonical quiet NaN
    }
    let sign = if x.is_sign_negative() { 0x8000u16 } else { 0 };
    let mag = f64::from(x.abs());
    if mag == 0.0 {
        return sign;
    }
    // Overflow region: the largest finite value is 65504; the next
    // representable step would be 65536, so the rounding boundary is
    // their midpoint 65520.
    if mag > 65520.0 {
        return sign | 0x7C00;
    }
    if mag == 65520.0 {
        return sign | 0x7C00; // tie: 0x7C00 is even, 0x7BFF is odd
    }
    if mag > f64::from(F16_MAX_F32) {
        return sign | 0x7BFF;
    }
    // Binary search the monotone positive patterns for the largest
    // value ≤ mag.
    let (mut lo, mut hi) = (0u16, 0x7BFFu16);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if ref_decode(mid) <= mag {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let below = ref_decode(lo);
    let above = if lo == 0x7BFF {
        65536.0
    } else {
        ref_decode(lo + 1)
    };
    let (d_below, d_above) = (mag - below, above - mag);
    let pick = if d_below < d_above {
        lo
    } else if d_above < d_below {
        lo + 1
    } else if lo % 2 == 0 {
        lo // tie → even pattern
    } else {
        lo + 1
    };
    if pick == 0x7C00 {
        return sign | 0x7C00; // rounded up past MAX → infinity
    }
    sign | pick
}

#[test]
fn all_patterns_round_trip_bit_for_bit() {
    for bits in 0..=u16::MAX {
        let h = F16::from_bits(bits);
        let f = h.to_f32();
        if f.is_nan() {
            // NaN payloads need not survive, but NaN-ness must.
            assert!(F16::from_f32(f).is_nan(), "bits {bits:#06x}");
            continue;
        }
        let back = F16::from_f32(f);
        assert_eq!(
            back.to_bits(),
            bits,
            "bits {bits:#06x} → {f} → {:#06x}",
            back.to_bits()
        );
    }
}

#[test]
fn decode_matches_reference_on_all_patterns() {
    for bits in 0..=u16::MAX {
        let ours = f64::from(F16::from_bits(bits).to_f32());
        let reference = ref_decode(bits);
        if reference.is_nan() {
            assert!(ours.is_nan(), "bits {bits:#06x}");
        } else {
            assert_eq!(ours, reference, "bits {bits:#06x}");
        }
    }
}

#[test]
fn encode_matches_reference_on_all_pattern_values() {
    for bits in 0..=u16::MAX {
        let f = F16::from_bits(bits).to_f32();
        if f.is_nan() {
            continue;
        }
        assert_eq!(
            F16::from_f32(f).to_bits(),
            ref_encode(f),
            "value {f} (from {bits:#06x})"
        );
    }
}

#[test]
fn midpoints_tie_to_even_everywhere() {
    // Every midpoint between consecutive positive finite values (both
    // subnormal and normal ranges) is exactly representable in f32 and
    // must round to the even neighbour — in both implementations.
    for bits in 0..0x7BFFu16 {
        let mid64 = (ref_decode(bits) + ref_decode(bits + 1)) / 2.0;
        let mid = mid64 as f32;
        assert_eq!(f64::from(mid), mid64, "midpoint not exact at {bits:#06x}");
        let expect = if bits % 2 == 0 { bits } else { bits + 1 };
        assert_eq!(ref_encode(mid), expect, "reference tie at {bits:#06x}");
        assert_eq!(
            F16::from_f32(mid).to_bits(),
            expect,
            "tie at {bits:#06x}: midpoint {mid}"
        );
        // Negative mirror.
        assert_eq!(F16::from_f32(-mid).to_bits(), 0x8000 | expect);
    }
}

#[test]
fn overflow_boundary_is_exact() {
    // 65519.996… < 65520 stays MAX; ≥ 65520 becomes infinity.
    assert_eq!(F16::from_f32(65504.0), F16::MAX);
    assert_eq!(F16::from_f32(65519.0).to_bits(), F16::MAX.to_bits());
    assert_eq!(F16::from_f32(65520.0), F16::INFINITY);
    assert_eq!(F16::from_f32(-65520.0), F16::NEG_INFINITY);
    assert_eq!(F16::from_f32(1e30), F16::INFINITY);
    assert_eq!(F16::from_f32(f32::INFINITY), F16::INFINITY);
    assert_eq!(F16::from_f32(f32::NEG_INFINITY), F16::NEG_INFINITY);
}

#[test]
fn underflow_boundary_is_exact() {
    let min_sub = f64::from(F16_MIN_POSITIVE_SUBNORMAL_F32);
    // Half the smallest subnormal ties to zero (even); just above it
    // rounds up to the smallest subnormal.
    assert_eq!(F16::from_f32((min_sub / 2.0) as f32).to_bits(), 0x0000);
    assert_eq!(F16::from_f32((min_sub * 0.6) as f32).to_bits(), 0x0001);
    assert_eq!(F16::from_f32(min_sub as f32).to_bits(), 0x0001);
}

#[test]
fn nan_payloads_stay_nan() {
    for bits in [0x7C01u16, 0x7DFF, 0x7E00, 0x7FFF, 0xFC01, 0xFFFF] {
        let h = F16::from_bits(bits);
        assert!(h.is_nan(), "{bits:#06x}");
        assert!(h.to_f32().is_nan(), "{bits:#06x}");
        assert!(F16::from_f32(h.to_f32()).is_nan(), "{bits:#06x}");
    }
    // f32 NaNs with arbitrary payloads must encode to an f16 NaN.
    for payload in [1u32, 0x7FFFFF, 0x400001] {
        let nan = f32::from_bits(0x7F80_0000 | payload);
        assert!(nan.is_nan());
        assert!(F16::from_f32(nan).is_nan(), "payload {payload:#x}");
    }
}

#[test]
fn random_f32_sweep_matches_reference() {
    // Deterministic splitmix64-driven sweep across the f32 range the
    // solver actually inhabits (plus scattered extremes).
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut checked = 0u32;
    while checked < 200_000 {
        let f = f32::from_bits(next() as u32);
        if f.is_nan() {
            continue;
        }
        assert_eq!(
            F16::from_f32(f).to_bits(),
            ref_encode(f),
            "value {f} ({:#010x})",
            f.to_bits()
        );
        checked += 1;
    }
}
