//! Synthetic planted-low-rank rating data.
//!
//! The paper evaluates on Netflix, Yahoo!Music and Hugewiki, none of which
//! can be redistributed or downloaded offline. We substitute *planted*
//! factorizations: draw ground-truth factors `P*`, `Q*`, sample coordinates
//! with Zipf-skewed popularity (real rating data is heavily skewed), and
//! observe `r = p*_u · q*_v + ε` with Gaussian noise `ε`.
//!
//! The planted construction has a property real data lacks but that makes
//! reproduction *auditable*: the exact Bayes-optimal test RMSE is known
//! (`noise_std`), so "converged" has a precise meaning and convergence
//! curves can be compared across solvers in units of the optimum.

use cumf_rng::distributions::Distribution;
use cumf_rng::ChaCha8Rng;
use cumf_rng::Rng;
use cumf_rng::SeedableRng;

use crate::coo::CooMatrix;

/// Walker alias table for O(1) sampling from a fixed discrete distribution.
///
/// Used to draw Zipf-skewed row and column indices; building the table is
/// O(n) and each sample costs one RNG draw + one comparison.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from non-negative weights (need not be normalised).
    pub fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        assert!(n > 0, "alias table needs at least one weight");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
            "weights must be non-negative, finite, not all zero"
        );
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Residue buckets get probability 1 (numerical slack).
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if the table has no categories (never; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
        let i = rng.gen_range(0..self.len());
        if rng.gen::<f64>() < self.prob[i] {
            i as u32
        } else {
            self.alias[i]
        }
    }
}

/// Zipf-like weights `w_i = 1 / (i + 1)^exponent`.
pub fn zipf_weights(n: usize, exponent: f64) -> Vec<f64> {
    (0..n)
        .map(|i| 1.0 / ((i + 1) as f64).powf(exponent))
        .collect()
}

/// Configuration of a synthetic planted-factorization data set.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Number of rows (users).
    pub m: u32,
    /// Number of columns (items).
    pub n: u32,
    /// Rank of the planted model.
    pub k_true: u32,
    /// Number of training samples to draw.
    pub train_samples: usize,
    /// Number of test samples to draw.
    pub test_samples: usize,
    /// Standard deviation of observation noise (the Bayes RMSE).
    pub noise_std: f64,
    /// Zipf exponent for row popularity (0 = uniform).
    pub row_skew: f64,
    /// Zipf exponent for column popularity (0 = uniform).
    pub col_skew: f64,
    /// Mean rating offset added to every sample (recentres ratings so they
    /// resemble a 1–5 star scale rather than zero-mean).
    pub rating_offset: f32,
    /// RNG seed; everything is deterministic given the config.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            m: 1000,
            n: 800,
            k_true: 8,
            train_samples: 60_000,
            test_samples: 6_000,
            noise_std: 0.1,
            row_skew: 0.6,
            col_skew: 0.6,
            rating_offset: 3.0,
            seed: 42,
        }
    }
}

/// A generated data set: train/test matrices plus the planted ground truth.
#[derive(Debug, Clone)]
pub struct SynthDataset {
    /// Training samples.
    pub train: CooMatrix,
    /// Held-out test samples (disjoint draw from the same model).
    pub test: CooMatrix,
    /// Planted row factors, row-major `m × k_true`.
    pub p_true: Vec<f32>,
    /// Planted column factors, row-major `n × k_true`.
    pub q_true: Vec<f32>,
    /// Noise standard deviation = the Bayes-optimal test RMSE.
    pub rmse_floor: f64,
    /// The generating configuration.
    pub config: SynthConfig,
}

/// Samples a standard normal via Box–Muller (keeps us independent of
/// rand_distr; two uniforms per pair of normals).
fn normal<R: Rng>(rng: &mut R, std: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() * std
}

/// Generates a planted data set from `config`.
pub fn generate(config: &SynthConfig) -> SynthDataset {
    assert!(config.m > 0 && config.n > 0 && config.k_true > 0);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let k = config.k_true as usize;
    // Factor scale 1/sqrt(k) keeps dot products O(1) regardless of rank
    // (same normalisation as Algorithm 1 line 3).
    let scale = 1.0 / (k as f64).sqrt();
    let p_true: Vec<f32> = (0..config.m as usize * k)
        .map(|_| normal(&mut rng, scale) as f32)
        .collect();
    let q_true: Vec<f32> = (0..config.n as usize * k)
        .map(|_| normal(&mut rng, scale) as f32)
        .collect();

    let row_table = AliasTable::new(&zipf_weights(config.m as usize, config.row_skew));
    let col_table = AliasTable::new(&zipf_weights(config.n as usize, config.col_skew));

    let draw = |count: usize, rng: &mut ChaCha8Rng| {
        let mut coo = CooMatrix::with_capacity(config.m, config.n, count);
        for _ in 0..count {
            let u = row_table.sample(rng);
            let v = col_table.sample(rng);
            let dot: f32 = (0..k)
                .map(|j| p_true[u as usize * k + j] * q_true[v as usize * k + j])
                .sum();
            let r = dot + config.rating_offset + normal(rng, config.noise_std) as f32;
            coo.push(u, v, r);
        }
        coo
    };

    let mut train = draw(config.train_samples, &mut rng);
    let test = draw(config.test_samples, &mut rng);
    train.shuffle(&mut rng);

    SynthDataset {
        train,
        test,
        p_true,
        q_true,
        rmse_floor: config.noise_std,
        config: config.clone(),
    }
}

impl Distribution<u32> for AliasTable {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let i = rng.gen_range(0..self.len());
        if rng.gen::<f64>() < self.prob[i] {
            i as u32
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alias_table_matches_weights() {
        let weights = [1.0, 2.0, 4.0, 1.0];
        let table = AliasTable::new(&weights);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        const DRAWS: usize = 200_000;
        for _ in 0..DRAWS {
            counts[table.sample(&mut rng) as usize] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let observed = counts[i] as f64 / DRAWS as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "bucket {i}: {observed} vs {expected}"
            );
        }
    }

    #[test]
    fn alias_table_uniform() {
        let table = AliasTable::new(&[1.0; 16]);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            seen.insert(table.sample(&mut rng));
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn alias_table_rejects_all_zero() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn zipf_weights_decay() {
        let w = zipf_weights(10, 1.0);
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[9] - 0.1).abs() < 1e-12);
        let flat = zipf_weights(5, 0.0);
        assert!(flat.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn generate_is_deterministic() {
        let cfg = SynthConfig {
            train_samples: 5_000,
            test_samples: 500,
            ..SynthConfig::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
        assert_eq!(a.p_true, b.p_true);
    }

    #[test]
    fn generated_shapes_and_sizes() {
        let cfg = SynthConfig {
            m: 200,
            n: 100,
            k_true: 4,
            train_samples: 3_000,
            test_samples: 300,
            ..SynthConfig::default()
        };
        let d = generate(&cfg);
        assert_eq!(d.train.rows(), 200);
        assert_eq!(d.train.cols(), 100);
        assert_eq!(d.train.nnz(), 3_000);
        assert_eq!(d.test.nnz(), 300);
        assert_eq!(d.p_true.len(), 200 * 4);
        assert_eq!(d.q_true.len(), 100 * 4);
        assert_eq!(d.rmse_floor, cfg.noise_std);
    }

    #[test]
    fn ratings_centre_near_offset() {
        let cfg = SynthConfig {
            train_samples: 20_000,
            rating_offset: 3.0,
            ..SynthConfig::default()
        };
        let d = generate(&cfg);
        let mean = d.train.mean_rating();
        assert!(
            (mean - 3.0).abs() < 0.2,
            "mean rating {mean} should sit near the offset"
        );
    }

    #[test]
    fn skew_concentrates_mass_on_early_rows() {
        let cfg = SynthConfig {
            m: 1000,
            n: 1000,
            row_skew: 1.0,
            col_skew: 0.0,
            train_samples: 50_000,
            test_samples: 10,
            ..SynthConfig::default()
        };
        let d = generate(&cfg);
        let deg = d.train.row_degrees();
        let head: u32 = deg[..10].iter().sum();
        let tail: u32 = deg[990..].iter().sum();
        assert!(
            head > 10 * tail,
            "zipf(1.0) head {head} must dwarf tail {tail}"
        );
        // Uniform columns: no such concentration.
        let cdeg = d.train.col_degrees();
        let chead: u32 = cdeg[..10].iter().sum();
        let ctail: u32 = cdeg[990..].iter().sum();
        assert!(chead < 3 * ctail + 100);
    }

    #[test]
    fn planted_model_predicts_test_set_at_floor() {
        // The ground truth must achieve ~noise_std RMSE on the test set.
        let cfg = SynthConfig {
            train_samples: 100,
            test_samples: 20_000,
            noise_std: 0.25,
            ..SynthConfig::default()
        };
        let d = generate(&cfg);
        let k = cfg.k_true as usize;
        let mut se = 0.0f64;
        for e in d.test.iter() {
            let dot: f32 = (0..k)
                .map(|j| d.p_true[e.u as usize * k + j] * d.q_true[e.v as usize * k + j])
                .sum();
            let err = (e.r - dot - cfg.rating_offset) as f64;
            se += err * err;
        }
        let rmse = (se / d.test.nnz() as f64).sqrt();
        assert!(
            (rmse - 0.25).abs() < 0.01,
            "ground-truth RMSE {rmse} should equal the noise floor"
        );
    }

    #[test]
    fn normal_has_right_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }
}
