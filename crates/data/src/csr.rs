//! CSR (compressed sparse row) views, for per-row traversal.
//!
//! The ALS baseline needs all samples of one user (row) or one item
//! (column) at a time; CSR over R and over Rᵀ provides exactly that.

use crate::coo::CooMatrix;

/// A sparse matrix in CSR format (immutable, built from COO).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    m: u32,
    n: u32,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds CSR from a COO matrix (counting sort by row; O(N + m)).
    pub fn from_coo(coo: &CooMatrix) -> Self {
        let m = coo.rows();
        let n = coo.cols();
        let nnz = coo.nnz();
        let mut row_ptr = vec![0usize; m as usize + 1];
        for &u in coo.us() {
            row_ptr[u as usize + 1] += 1;
        }
        for i in 1..row_ptr.len() {
            row_ptr[i] += row_ptr[i - 1];
        }
        let mut col_idx = vec![0u32; nnz];
        let mut values = vec![0f32; nnz];
        let mut next = row_ptr.clone();
        for i in 0..nnz {
            let e = coo.get(i);
            let slot = next[e.u as usize];
            col_idx[slot] = e.v;
            values[slot] = e.r;
            next[e.u as usize] += 1;
        }
        CsrMatrix {
            m,
            n,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// CSR of the transpose (i.e. CSC of the original): per-column access.
    pub fn from_coo_transposed(coo: &CooMatrix) -> Self {
        let mut t = CooMatrix::with_capacity(coo.cols(), coo.rows(), coo.nnz());
        for e in coo.iter() {
            t.push(e.v, e.u, e.r);
        }
        Self::from_coo(&t)
    }

    /// Number of rows.
    pub fn rows(&self) -> u32 {
        self.m
    }

    /// Number of columns.
    pub fn cols(&self) -> u32 {
        self.n
    }

    /// Number of stored samples.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The (column, value) pairs of row `u`.
    pub fn row(&self, u: u32) -> (&[u32], &[f32]) {
        let lo = self.row_ptr[u as usize];
        let hi = self.row_ptr[u as usize + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Number of samples in row `u`.
    pub fn row_nnz(&self, u: u32) -> usize {
        self.row_ptr[u as usize + 1] - self.row_ptr[u as usize]
    }

    /// Iterates `(row, cols, values)` over all non-empty rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = (u32, &[u32], &[f32])> + '_ {
        (0..self.m).filter_map(move |u| {
            let (c, v) = self.row(u);
            if c.is_empty() {
                None
            } else {
                Some((u, c, v))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooMatrix {
        let mut coo = CooMatrix::new(3, 4);
        coo.push(2, 0, 1.0);
        coo.push(0, 3, 2.0);
        coo.push(2, 2, 3.0);
        coo.push(0, 1, 4.0);
        coo
    }

    #[test]
    fn csr_rows_match_coo() {
        let csr = CsrMatrix::from_coo(&sample());
        assert_eq!(csr.nnz(), 4);
        assert_eq!(csr.row_nnz(0), 2);
        assert_eq!(csr.row_nnz(1), 0);
        assert_eq!(csr.row_nnz(2), 2);
        let (cols, vals) = csr.row(0);
        // Storage order within a row follows COO order.
        assert_eq!(cols, &[3, 1]);
        assert_eq!(vals, &[2.0, 4.0]);
        let (cols, vals) = csr.row(2);
        assert_eq!(cols, &[0, 2]);
        assert_eq!(vals, &[1.0, 3.0]);
    }

    #[test]
    fn transpose_gives_column_access() {
        let csc = CsrMatrix::from_coo_transposed(&sample());
        assert_eq!(csc.rows(), 4); // original columns
        assert_eq!(csc.cols(), 3);
        let (rows, vals) = csc.row(3); // original column 3
        assert_eq!(rows, &[0]);
        assert_eq!(vals, &[2.0]);
        let (rows, _) = csc.row(2);
        assert_eq!(rows, &[2]);
    }

    #[test]
    fn iter_rows_skips_empty() {
        let csr = CsrMatrix::from_coo(&sample());
        let rows: Vec<u32> = csr.iter_rows().map(|(u, _, _)| u).collect();
        assert_eq!(rows, vec![0, 2]);
    }

    #[test]
    fn empty_matrix() {
        let csr = CsrMatrix::from_coo(&CooMatrix::new(2, 2));
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.row_nnz(0), 0);
        assert_eq!(csr.iter_rows().count(), 0);
    }
}
