//! Train/test splitting.
//!
//! Hugewiki ships without a test set; the paper "randomly sample\[s\] and
//! extract\[s\] out 1% of the data as the test set" (§2.2). This module
//! implements that holdout split.

use cumf_rng::Rng;

use crate::coo::CooMatrix;

/// Randomly splits `fraction` of the samples into a held-out test set;
/// the remainder becomes the training set. Both matrices keep the parent's
/// dimensions.
pub fn holdout_split<R: Rng>(
    coo: &CooMatrix,
    fraction: f64,
    rng: &mut R,
) -> (CooMatrix, CooMatrix) {
    assert!(
        (0.0..1.0).contains(&fraction),
        "holdout fraction must be in [0, 1), got {fraction}"
    );
    let n = coo.nnz();
    let test_target = (n as f64 * fraction).round() as usize;
    // Reservoir-free exact sampling: choose test indices via partial
    // Fisher-Yates over an index array.
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..test_target.min(n) {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    let mut is_test = vec![false; n];
    for &i in &idx[..test_target.min(n)] {
        is_test[i] = true;
    }
    let mut train = CooMatrix::with_capacity(coo.rows(), coo.cols(), n - test_target);
    let mut test = CooMatrix::with_capacity(coo.rows(), coo.cols(), test_target);
    for (i, e) in coo.iter().enumerate() {
        if is_test[i] {
            test.push(e.u, e.v, e.r);
        } else {
            train.push(e.u, e.v, e.r);
        }
    }
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_rng::ChaCha8Rng;
    use cumf_rng::SeedableRng;

    fn matrix(n: usize) -> CooMatrix {
        let mut coo = CooMatrix::new(100, 100);
        for i in 0..n {
            coo.push((i % 100) as u32, ((i * 7) % 100) as u32, i as f32);
        }
        coo
    }

    #[test]
    fn split_sizes_are_exact() {
        let coo = matrix(10_000);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let (train, test) = holdout_split(&coo, 0.01, &mut rng);
        assert_eq!(test.nnz(), 100);
        assert_eq!(train.nnz(), 9_900);
        assert_eq!(train.rows(), 100);
        assert_eq!(test.cols(), 100);
    }

    #[test]
    fn split_partitions_samples() {
        let coo = matrix(1_000);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let (train, test) = holdout_split(&coo, 0.2, &mut rng);
        let mut all: Vec<u32> = train
            .iter()
            .chain(test.iter())
            .map(|e| e.r.to_bits())
            .collect();
        all.sort_unstable();
        let mut orig: Vec<u32> = coo.iter().map(|e| e.r.to_bits()).collect();
        orig.sort_unstable();
        assert_eq!(all, orig);
    }

    #[test]
    fn zero_fraction_keeps_everything() {
        let coo = matrix(50);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let (train, test) = holdout_split(&coo, 0.0, &mut rng);
        assert_eq!(train.nnz(), 50);
        assert_eq!(test.nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn fraction_one_rejected() {
        let coo = matrix(10);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let _ = holdout_split(&coo, 1.0, &mut rng);
    }

    #[test]
    fn deterministic_given_seed() {
        let coo = matrix(500);
        let (a, _) = holdout_split(&coo, 0.1, &mut ChaCha8Rng::seed_from_u64(9));
        let (b, _) = holdout_split(&coo, 0.1, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
