//! COO (coordinate) sparse rating matrices.
//!
//! The paper assumes COO storage throughout: one sample `r_{u,v}` is two
//! `u32` coordinates plus an `f32` rating — 12 bytes (§2.3). We store the
//! three components in separate arrays (structure-of-arrays) so that the
//! CPU kernels stream them exactly as a GPU would coalesce them.

use cumf_rng::Rng;

/// One observed sample of the rating matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// Row (user) index `u`.
    pub u: u32,
    /// Column (item) index `v`.
    pub v: u32,
    /// Rating `r_{u,v}`.
    pub r: f32,
}

/// A sparse m×n rating matrix in COO format.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CooMatrix {
    m: u32,
    n: u32,
    us: Vec<u32>,
    vs: Vec<u32>,
    rs: Vec<f32>,
}

impl CooMatrix {
    /// Creates an empty m×n matrix.
    pub fn new(m: u32, n: u32) -> Self {
        CooMatrix {
            m,
            n,
            us: Vec::new(),
            vs: Vec::new(),
            rs: Vec::new(),
        }
    }

    /// Creates an empty m×n matrix with capacity for `cap` samples.
    pub fn with_capacity(m: u32, n: u32, cap: usize) -> Self {
        CooMatrix {
            m,
            n,
            us: Vec::with_capacity(cap),
            vs: Vec::with_capacity(cap),
            rs: Vec::with_capacity(cap),
        }
    }

    /// Number of rows (users).
    pub fn rows(&self) -> u32 {
        self.m
    }

    /// Number of columns (items).
    pub fn cols(&self) -> u32 {
        self.n
    }

    /// Number of observed samples (`N` in the paper).
    pub fn nnz(&self) -> usize {
        self.rs.len()
    }

    /// True if no samples are stored.
    pub fn is_empty(&self) -> bool {
        self.rs.is_empty()
    }

    /// Appends one sample. Panics if the coordinates are out of bounds.
    pub fn push(&mut self, u: u32, v: u32, r: f32) {
        assert!(u < self.m, "row {u} out of bounds (m = {})", self.m);
        assert!(v < self.n, "col {v} out of bounds (n = {})", self.n);
        assert!(r.is_finite(), "rating must be finite");
        self.us.push(u);
        self.vs.push(v);
        self.rs.push(r);
    }

    /// The `i`-th sample.
    #[inline]
    pub fn get(&self, i: usize) -> Entry {
        Entry {
            u: self.us[i],
            v: self.vs[i],
            r: self.rs[i],
        }
    }

    /// Row-coordinate array.
    #[inline]
    pub fn us(&self) -> &[u32] {
        &self.us
    }

    /// Column-coordinate array.
    #[inline]
    pub fn vs(&self) -> &[u32] {
        &self.vs
    }

    /// Rating array.
    #[inline]
    pub fn rs(&self) -> &[f32] {
        &self.rs
    }

    /// Iterates over all samples in storage order.
    pub fn iter(&self) -> impl Iterator<Item = Entry> + '_ {
        (0..self.nnz()).map(move |i| self.get(i))
    }

    /// Fisher–Yates shuffle of the sample order (Algorithm 1, line 2:
    /// `random_shuffle(R)`). Storage order becomes random, which is what
    /// lets batch-Hogwild! read *consecutively* while updating *randomly*
    /// (§5.1: "samples are consecutive in their memory storage; because we
    /// shuffle samples, they are still random in terms of coordinates").
    pub fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        let n = self.nnz();
        if n < 2 {
            return;
        }
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            self.us.swap(i, j);
            self.vs.swap(i, j);
            self.rs.swap(i, j);
        }
    }

    /// Mean rating.
    pub fn mean_rating(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.rs.iter().map(|&r| r as f64).sum::<f64>() / self.nnz() as f64
    }

    /// Per-row sample counts (degree of each user).
    pub fn row_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.m as usize];
        for &u in &self.us {
            deg[u as usize] += 1;
        }
        deg
    }

    /// Per-column sample counts (degree of each item).
    pub fn col_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.n as usize];
        for &v in &self.vs {
            deg[v as usize] += 1;
        }
        deg
    }

    /// Bytes of one stored sample (2 × u32 + f32), as assumed in Eq. 5.
    pub const SAMPLE_BYTES: usize = 12;

    /// Total payload size in bytes.
    pub fn payload_bytes(&self) -> usize {
        self.nnz() * Self::SAMPLE_BYTES
    }

    /// Selects the sub-matrix of samples falling inside the half-open
    /// coordinate window `rows × cols`, re-based to the window's origin.
    pub fn window(&self, rows: std::ops::Range<u32>, cols: std::ops::Range<u32>) -> CooMatrix {
        let mut out = CooMatrix::new(rows.end - rows.start, cols.end - cols.start);
        for e in self.iter() {
            if rows.contains(&e.u) && cols.contains(&e.v) {
                out.push(e.u - rows.start, e.v - cols.start, e.r);
            }
        }
        out
    }
}

impl FromIterator<Entry> for CooMatrix {
    /// Collects entries, sizing the matrix to the max coordinates seen.
    fn from_iter<T: IntoIterator<Item = Entry>>(iter: T) -> Self {
        let entries: Vec<Entry> = iter.into_iter().collect();
        let m = entries.iter().map(|e| e.u + 1).max().unwrap_or(0);
        let n = entries.iter().map(|e| e.v + 1).max().unwrap_or(0);
        let mut coo = CooMatrix::with_capacity(m, n, entries.len());
        for e in entries {
            coo.push(e.u, e.v, e.r);
        }
        coo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_rng::ChaCha8Rng;
    use cumf_rng::SeedableRng;

    fn sample_matrix() -> CooMatrix {
        let mut coo = CooMatrix::new(4, 4);
        // The 9-sample example of the paper's Figure 1.
        for (u, v, r) in [
            (0, 1, 5.0),
            (0, 2, 3.0),
            (1, 0, 4.0),
            (1, 3, 1.0),
            (2, 1, 2.0),
            (2, 2, 5.0),
            (3, 0, 3.0),
            (3, 2, 4.0),
            (3, 3, 2.0),
        ] {
            coo.push(u, v, r);
        }
        coo
    }

    #[test]
    fn push_and_get() {
        let coo = sample_matrix();
        assert_eq!(coo.nnz(), 9);
        assert_eq!(coo.rows(), 4);
        assert_eq!(coo.cols(), 4);
        assert_eq!(coo.get(0), Entry { u: 0, v: 1, r: 5.0 });
        assert_eq!(coo.payload_bytes(), 9 * 12);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_rejects_bad_row() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(2, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn push_rejects_nan() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, f32::NAN);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut coo = sample_matrix();
        let before: Vec<(u32, u32, u32)> = coo.iter().map(|e| (e.u, e.v, e.r.to_bits())).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        coo.shuffle(&mut rng);
        let mut after: Vec<(u32, u32, u32)> =
            coo.iter().map(|e| (e.u, e.v, e.r.to_bits())).collect();
        assert_ne!(
            before, after,
            "9! orderings; a fixed seed must move something"
        );
        after.sort_unstable();
        let mut sorted_before = before;
        sorted_before.sort_unstable();
        assert_eq!(sorted_before, after);
    }

    #[test]
    fn degrees() {
        let coo = sample_matrix();
        assert_eq!(coo.row_degrees(), vec![2, 2, 2, 3]);
        assert_eq!(coo.col_degrees(), vec![2, 2, 3, 2]);
    }

    #[test]
    fn mean_rating() {
        let coo = sample_matrix();
        let expect = (5.0 + 3.0 + 4.0 + 1.0 + 2.0 + 5.0 + 3.0 + 4.0 + 2.0) / 9.0;
        assert!((coo.mean_rating() - expect).abs() < 1e-12);
        assert_eq!(CooMatrix::new(3, 3).mean_rating(), 0.0);
    }

    #[test]
    fn window_extracts_and_rebases() {
        let coo = sample_matrix();
        let w = coo.window(2..4, 0..2);
        assert_eq!(w.rows(), 2);
        assert_eq!(w.cols(), 2);
        // In-range samples: (2,1,2.0) and (3,0,3.0).
        let entries: Vec<Entry> = w.iter().collect();
        assert_eq!(entries.len(), 2);
        assert!(entries.contains(&Entry { u: 0, v: 1, r: 2.0 }));
        assert!(entries.contains(&Entry { u: 1, v: 0, r: 3.0 }));
    }

    #[test]
    fn from_iterator_sizes_matrix() {
        let coo: CooMatrix = [Entry { u: 3, v: 1, r: 1.0 }, Entry { u: 0, v: 5, r: 2.0 }]
            .into_iter()
            .collect();
        assert_eq!(coo.rows(), 4);
        assert_eq!(coo.cols(), 6);
        assert_eq!(coo.nnz(), 2);
    }

    #[test]
    fn shuffle_of_tiny_matrices_is_safe() {
        let mut coo = CooMatrix::new(1, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        coo.shuffle(&mut rng); // empty
        coo.push(0, 0, 1.0);
        coo.shuffle(&mut rng); // single
        assert_eq!(coo.nnz(), 1);
    }
}
