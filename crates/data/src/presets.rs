//! The paper's three benchmark data sets (Table 2) and their scaled
//! synthetic stand-ins.
//!
//! | Dataset     | m          | n       | k   | train         | test       |
//! |-------------|------------|---------|-----|---------------|------------|
//! | Netflix     | 480,190    | 17,771  | 128 | 99,072,112    | 1,408,395  |
//! | Yahoo!Music | 1,000,990  | 624,961 | 128 | 252,800,275   | 4,003,960  |
//! | Hugewiki    | 50,082,604 | 39,781  | 128 | 3,069,817,980 | 31,327,899 |
//!
//! The *full* shapes are used as pure metadata by the performance model
//! (which only needs counts). For convergence experiments we generate
//! planted data at a linear scale factor, preserving each data set's aspect
//! ratio `m:n` and its samples-per-parameter ratio `N / ((m+n)·k)` — the two
//! quantities that drive the paper's findings (partitionability, Hogwild!
//! conflict rates, and convergence speed respectively).

use crate::synth::{generate, SynthConfig, SynthDataset};

/// Static description of one of the paper's benchmark data sets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Data set name as used in the paper.
    pub name: &'static str,
    /// Rows (users).
    pub m: u64,
    /// Columns (items).
    pub n: u64,
    /// Feature dimension used in the paper.
    pub k: u32,
    /// Training samples.
    pub train: u64,
    /// Test samples.
    pub test: u64,
    /// Regularisation λ (Table 3).
    pub lambda: f32,
    /// Initial learning rate α (Table 3).
    pub alpha: f32,
    /// Learning-rate decay β (Table 3).
    pub beta: f32,
    /// The paper's convergence target RMSE (Table 4).
    pub target_rmse: f64,
}

/// Netflix (Table 2 column 1; Table 3 row 1; target RMSE 0.92).
pub const NETFLIX: DatasetSpec = DatasetSpec {
    name: "Netflix",
    m: 480_190,
    n: 17_771,
    k: 128,
    train: 99_072_112,
    test: 1_408_395,
    lambda: 0.05,
    alpha: 0.08,
    beta: 0.3,
    target_rmse: 0.92,
};

/// Yahoo!Music (Table 2 column 2; target RMSE 22.0).
pub const YAHOO_MUSIC: DatasetSpec = DatasetSpec {
    name: "Yahoo!Music",
    m: 1_000_990,
    n: 624_961,
    k: 128,
    train: 252_800_275,
    test: 4_003_960,
    lambda: 1.0,
    alpha: 0.08,
    beta: 0.2,
    target_rmse: 22.0,
};

/// Hugewiki (Table 2 column 3; target RMSE 0.52).
pub const HUGEWIKI: DatasetSpec = DatasetSpec {
    name: "Hugewiki",
    m: 50_082_604,
    n: 39_781,
    k: 128,
    train: 3_069_817_980,
    test: 31_327_899,
    lambda: 0.03,
    alpha: 0.08,
    beta: 0.3,
    target_rmse: 0.52,
};

/// All three paper data sets in the paper's order.
pub const ALL: [DatasetSpec; 3] = [NETFLIX, YAHOO_MUSIC, HUGEWIKI];

impl DatasetSpec {
    /// Samples-per-parameter ratio `N / ((m+n)·k)` of the full data set.
    pub fn samples_per_param(&self) -> f64 {
        self.train as f64 / ((self.m + self.n) as f64 * self.k as f64)
    }

    /// Bytes of the full COO training payload (12 B/sample).
    pub fn train_bytes(&self) -> u64 {
        self.train * 12
    }

    /// Bytes of both feature matrices at element width `elem_bytes`.
    pub fn feature_bytes(&self, elem_bytes: u32) -> u64 {
        (self.m + self.n) * self.k as u64 * elem_bytes as u64
    }

    /// Minimum samples-per-parameter for scaled stand-ins. The full data
    /// sets get away with as little as 0.48 (Hugewiki) because their huge
    /// dimensions concentrate estimation error; at laptop scale a planted
    /// model needs ~4 observations per parameter to be recoverable, so the
    /// scaled sample count is `max(paper_ratio, 4) * (m+n) * k`.
    pub const MIN_SAMPLES_PER_PARAM: f64 = 4.0;

    /// A scaled synthetic stand-in: `m` and `n` shrink by `scale`
    /// (linearly, floored at `12*k_small` so the matrix stays usable),
    /// `k` is replaced by `k_small`, and the sample count keeps the full
    /// set's samples-per-parameter ratio subject to
    /// [`Self::MIN_SAMPLES_PER_PARAM`].
    ///
    /// The *planted* rank is `k_small - 2`: the constant rating offset adds
    /// a rank-1 component, so a rank-`k_small` model retains capacity to
    /// reach the noise floor exactly.
    pub fn scaled_config(&self, scale: f64, k_small: u32, seed: u64) -> SynthConfig {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let floor = 12 * k_small;
        let m = ((self.m as f64 * scale).round() as u32).max(floor);
        let n = ((self.n as f64 * scale).round() as u32).max(floor);
        let spp = self.samples_per_param().max(Self::MIN_SAMPLES_PER_PARAM);
        let train = (spp * (m + n) as f64 * k_small as f64).round() as usize;
        let test = ((train as f64) * (self.test as f64 / self.train as f64)).round() as usize;
        SynthConfig {
            m,
            n,
            k_true: k_small.saturating_sub(2).max(2),
            train_samples: train.max(1000),
            test_samples: test.max(200),
            noise_std: 0.1,
            row_skew: 0.55,
            col_skew: 0.55,
            rating_offset: 3.0,
            seed,
        }
    }

    /// Generates the scaled stand-in data set.
    pub fn scaled(&self, scale: f64, k_small: u32, seed: u64) -> SynthDataset {
        generate(&self.scaled_config(scale, k_small, seed))
    }
}

/// Default experiment scale: 1% of the paper's linear dimensions.
pub const DEFAULT_SCALE: f64 = 0.01;

/// Default feature dimension for scaled convergence experiments.
pub const DEFAULT_K: u32 = 16;

/// Netflix-shaped stand-in at the default scale.
pub fn netflix_like(seed: u64) -> SynthDataset {
    NETFLIX.scaled(DEFAULT_SCALE, DEFAULT_K, seed)
}

/// Yahoo!Music-shaped stand-in at the default scale.
pub fn yahoo_like(seed: u64) -> SynthDataset {
    YAHOO_MUSIC.scaled(DEFAULT_SCALE, DEFAULT_K, seed)
}

/// Hugewiki-shaped stand-in. Note: 1% of 50M rows is still 500k rows; the
/// Hugewiki scale is therefore 0.02% (with the dimension floor giving the
/// item side ~12k ratio-of-aspect — still an extremely wide matrix, the
/// property that limits Hugewiki's partitionability in §7.7).
pub fn hugewiki_like(seed: u64) -> SynthDataset {
    HUGEWIKI.scaled(0.0002, DEFAULT_K, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_is_transcribed_correctly() {
        assert_eq!(NETFLIX.m, 480_190);
        assert_eq!(NETFLIX.n, 17_771);
        assert_eq!(NETFLIX.train, 99_072_112);
        assert_eq!(YAHOO_MUSIC.train, 252_800_275);
        assert_eq!(HUGEWIKI.train, 3_069_817_980);
        for d in ALL {
            assert_eq!(d.k, 128);
        }
    }

    #[test]
    fn table3_parameters() {
        assert_eq!(NETFLIX.lambda, 0.05);
        assert_eq!(YAHOO_MUSIC.lambda, 1.0);
        assert_eq!(HUGEWIKI.lambda, 0.03);
        for d in ALL {
            assert_eq!(d.alpha, 0.08);
        }
        assert_eq!(YAHOO_MUSIC.beta, 0.2);
    }

    #[test]
    fn hugewiki_exceeds_gpu_memory() {
        // §7.2: Hugewiki needs ~49 GB with half precision — exceeding the
        // 12/16 GB GPUs — which is why the partitioned path exists.
        let total = HUGEWIKI.train_bytes() + HUGEWIKI.feature_bytes(2);
        assert!(total as f64 > 45e9, "hugewiki bytes {total}");
        assert!((NETFLIX.train_bytes() as f64) < 12e9 * 0.5);
    }

    #[test]
    fn samples_per_param_ratios() {
        assert!((NETFLIX.samples_per_param() - 1.55).abs() < 0.05);
        assert!((YAHOO_MUSIC.samples_per_param() - 1.21).abs() < 0.05);
        assert!((HUGEWIKI.samples_per_param() - 0.48).abs() < 0.05);
    }

    #[test]
    fn scaled_configs_preserve_shape() {
        let cfg = NETFLIX.scaled_config(0.01, 16, 1);
        assert_eq!(cfg.m, 4802);
        assert_eq!(cfg.n, 192); // 178 raised to the 12k floor
                                // Samples-per-parameter floored at the recoverability minimum.
        let spp = cfg.train_samples as f64 / ((cfg.m + cfg.n) as f64 * 16.0);
        assert!((spp - DatasetSpec::MIN_SAMPLES_PER_PARAM).abs() < 0.05);
        // Yahoo at a larger scale keeps its aspect exactly (no floor hit).
        let y = YAHOO_MUSIC.scaled_config(0.01, 16, 1);
        let aspect_full = YAHOO_MUSIC.m as f64 / YAHOO_MUSIC.n as f64;
        let aspect = y.m as f64 / y.n as f64;
        assert!((aspect / aspect_full - 1.0).abs() < 0.01);
    }

    #[test]
    fn scaled_generation_runs() {
        let d = NETFLIX.scaled(0.002, 8, 3);
        assert!(d.train.nnz() >= 1000);
        assert!(d.test.nnz() >= 200);
        assert_eq!(d.train.rows(), 960);
    }

    #[test]
    fn hugewiki_like_stays_very_wide() {
        let cfg = HUGEWIKI.scaled_config(0.0002, 16, 0);
        let aspect = cfg.m as f64 / cfg.n as f64;
        assert!(aspect > 20.0, "hugewiki stand-in must stay wide: {aspect}");
        assert!(cfg.n >= 192);
    }

    #[test]
    #[should_panic(expected = "scale must be")]
    fn scale_validated() {
        let _ = NETFLIX.scaled_config(0.0, 16, 0);
    }
}
