//! Reading and writing rating matrices.
//!
//! Two formats:
//!
//! * **Text** — one `u v r` triple per line, whitespace-separated, `#`
//!   comments allowed. This is the LIBMF / NOMAD interchange format, so the
//!   real Netflix/Yahoo/Hugewiki files can be loaded if present.
//! * **Binary** — a compact little-endian format (`CUMF` magic, header,
//!   then the three COO arrays back to back), used for fast round-trips of
//!   generated data.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::coo::CooMatrix;

/// Errors raised by the loaders.
#[derive(Debug)]
pub enum DataError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Malformed content, with a line number (1-based) where applicable.
    Parse {
        /// Line at which the problem was found (0 when not line-oriented).
        line: usize,
        /// Explanation.
        message: String,
    },
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "io error: {e}"),
            DataError::Parse { line, message } => {
                if *line > 0 {
                    write!(f, "parse error at line {line}: {message}")
                } else {
                    write!(f, "parse error: {message}")
                }
            }
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            DataError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for DataError {
    fn from(e: io::Error) -> Self {
        DataError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> DataError {
    DataError::Parse {
        line,
        message: message.into(),
    }
}

/// Reads a text rating file from any `BufRead` source.
///
/// Dimensions grow to fit the data; pass `min_m`/`min_n` = 0 unless the
/// matrix must be at least a given shape.
pub fn read_text<R: BufRead>(reader: R, min_m: u32, min_n: u32) -> Result<CooMatrix, DataError> {
    let mut us = Vec::new();
    let mut vs = Vec::new();
    let mut rs = Vec::new();
    let mut m = min_m;
    let mut n = min_n;
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut parts = body.split_whitespace();
        let u: u32 = parts
            .next()
            .ok_or_else(|| parse_err(lineno, "missing row index"))?
            .parse()
            .map_err(|e| parse_err(lineno, format!("bad row index: {e}")))?;
        let v: u32 = parts
            .next()
            .ok_or_else(|| parse_err(lineno, "missing column index"))?
            .parse()
            .map_err(|e| parse_err(lineno, format!("bad column index: {e}")))?;
        let r: f32 = parts
            .next()
            .ok_or_else(|| parse_err(lineno, "missing rating"))?
            .parse()
            .map_err(|e| parse_err(lineno, format!("bad rating: {e}")))?;
        if !r.is_finite() {
            return Err(parse_err(lineno, "rating must be finite"));
        }
        if parts.next().is_some() {
            return Err(parse_err(lineno, "trailing tokens after `u v r`"));
        }
        m = m.max(u + 1);
        n = n.max(v + 1);
        us.push(u);
        vs.push(v);
        rs.push(r);
    }
    let mut coo = CooMatrix::with_capacity(m, n, rs.len());
    for i in 0..rs.len() {
        coo.push(us[i], vs[i], rs[i]);
    }
    Ok(coo)
}

/// Reads a text rating file from disk.
pub fn read_text_file(path: impl AsRef<Path>) -> Result<CooMatrix, DataError> {
    let file = File::open(path)?;
    read_text(BufReader::new(file), 0, 0)
}

/// Writes a matrix in text format.
pub fn write_text<W: Write>(writer: W, coo: &CooMatrix) -> Result<(), DataError> {
    let mut w = BufWriter::new(writer);
    for e in coo.iter() {
        writeln!(w, "{} {} {}", e.u, e.v, e.r)?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a matrix in text format to disk.
pub fn write_text_file(path: impl AsRef<Path>, coo: &CooMatrix) -> Result<(), DataError> {
    write_text(File::create(path)?, coo)
}

const MAGIC: &[u8; 4] = b"CUMF";
const VERSION: u32 = 1;

/// Writes the compact binary format.
pub fn write_binary<W: Write>(writer: W, coo: &CooMatrix) -> Result<(), DataError> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&coo.rows().to_le_bytes())?;
    w.write_all(&coo.cols().to_le_bytes())?;
    w.write_all(&(coo.nnz() as u64).to_le_bytes())?;
    for &u in coo.us() {
        w.write_all(&u.to_le_bytes())?;
    }
    for &v in coo.vs() {
        w.write_all(&v.to_le_bytes())?;
    }
    for &r in coo.rs() {
        w.write_all(&r.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Writes the binary format to disk.
pub fn write_binary_file(path: impl AsRef<Path>, coo: &CooMatrix) -> Result<(), DataError> {
    write_binary(File::create(path)?, coo)
}

/// Reads the compact binary format.
pub fn read_binary<R: Read>(reader: R) -> Result<CooMatrix, DataError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(parse_err(0, "bad magic: not a CUMF binary file"));
    }
    let mut buf4 = [0u8; 4];
    r.read_exact(&mut buf4)?;
    let version = u32::from_le_bytes(buf4);
    if version != VERSION {
        return Err(parse_err(0, format!("unsupported version {version}")));
    }
    r.read_exact(&mut buf4)?;
    let m = u32::from_le_bytes(buf4);
    r.read_exact(&mut buf4)?;
    let n = u32::from_le_bytes(buf4);
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let nnz = u64::from_le_bytes(buf8) as usize;
    // `nnz` is untrusted: never pre-allocate more than a bounded amount up
    // front — a corrupt header must fail with a read error, not an OOM
    // abort. Vec growth beyond the cap is amortised as data actually
    // arrives.
    const PREALLOC_CAP: usize = 1 << 20;
    let cap = nnz.min(PREALLOC_CAP);
    let read_u32s = |r: &mut BufReader<R>, out: &mut Vec<u32>| -> Result<(), DataError> {
        let mut buf = [0u8; 4];
        for _ in 0..nnz {
            r.read_exact(&mut buf)?;
            out.push(u32::from_le_bytes(buf));
        }
        Ok(())
    };
    let mut us = Vec::with_capacity(cap);
    let mut vs = Vec::with_capacity(cap);
    read_u32s(&mut r, &mut us)?;
    read_u32s(&mut r, &mut vs)?;
    let mut rs = Vec::with_capacity(cap);
    let mut buf = [0u8; 4];
    for _ in 0..nnz {
        r.read_exact(&mut buf)?;
        rs.push(f32::from_le_bytes(buf));
    }
    let mut coo = CooMatrix::with_capacity(m, n, nnz.min(PREALLOC_CAP));
    for i in 0..nnz {
        if us[i] >= m || vs[i] >= n {
            return Err(parse_err(0, format!("sample {i} out of bounds")));
        }
        if !rs[i].is_finite() {
            return Err(parse_err(0, format!("sample {i} has non-finite rating")));
        }
        coo.push(us[i], vs[i], rs[i]);
    }
    Ok(coo)
}

/// Reads the binary format from disk.
pub fn read_binary_file(path: impl AsRef<Path>) -> Result<CooMatrix, DataError> {
    read_binary(File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> CooMatrix {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 4.5);
        coo.push(2, 0, 1.0);
        coo.push(1, 2, 3.25);
        coo
    }

    #[test]
    fn text_round_trip() {
        let coo = sample();
        let mut buf = Vec::new();
        write_text(&mut buf, &coo).unwrap();
        let loaded = read_text(Cursor::new(buf), 0, 0).unwrap();
        assert_eq!(loaded, coo);
    }

    #[test]
    fn text_tolerates_comments_and_blanks() {
        let input = "# header\n\n0 1 4.5 # inline comment\n\n2 0 1\n";
        let coo = read_text(Cursor::new(input), 0, 0).unwrap();
        assert_eq!(coo.nnz(), 2);
        assert_eq!(coo.rows(), 3);
        assert_eq!(coo.cols(), 2);
    }

    #[test]
    fn text_min_dims_respected() {
        let coo = read_text(Cursor::new("0 0 1.0\n"), 10, 20).unwrap();
        assert_eq!(coo.rows(), 10);
        assert_eq!(coo.cols(), 20);
    }

    #[test]
    fn text_rejects_garbage() {
        let err = read_text(Cursor::new("0 x 1.0\n"), 0, 0).unwrap_err();
        assert!(matches!(err, DataError::Parse { line: 1, .. }), "{err}");
        let err = read_text(Cursor::new("1 2\n"), 0, 0).unwrap_err();
        assert!(err.to_string().contains("missing rating"));
        let err = read_text(Cursor::new("1 2 3 4\n"), 0, 0).unwrap_err();
        assert!(err.to_string().contains("trailing"));
        let err = read_text(Cursor::new("1 2 inf\n"), 0, 0).unwrap_err();
        assert!(err.to_string().contains("finite"));
    }

    #[test]
    fn binary_round_trip() {
        let coo = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &coo).unwrap();
        let loaded = read_binary(Cursor::new(buf)).unwrap();
        assert_eq!(loaded, coo);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(Cursor::new(b"NOPE....".to_vec())).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn binary_rejects_truncation() {
        let coo = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &coo).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_binary(Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, DataError::Io(_)));
    }

    #[test]
    fn binary_rejects_out_of_bounds_payload() {
        let coo = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &coo).unwrap();
        // Header is 24 bytes (magic+version+m+n+nnz); corrupt the first row
        // index to exceed m=3.
        buf[24] = 200;
        let err = read_binary(Cursor::new(buf)).unwrap_err();
        assert!(err.to_string().contains("out of bounds"), "{err}");
    }

    #[test]
    fn binary_corrupt_nnz_header_fails_cleanly() {
        // A corrupted sample count must produce a read error, not attempt a
        // terabyte-scale allocation.
        let coo = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &coo).unwrap();
        buf[20] = 200; // high byte of the little-endian u64 nnz
        let err = read_binary(Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, DataError::Io(_)), "{err}");
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("cumf_data_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.bin");
        let coo = sample();
        write_binary_file(&path, &coo).unwrap();
        assert_eq!(read_binary_file(&path).unwrap(), coo);
        let tpath = dir.join("sample.txt");
        write_text_file(&tpath, &coo).unwrap();
        assert_eq!(read_text_file(&tpath).unwrap(), coo);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
