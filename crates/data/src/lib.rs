//! # cumf-data — rating matrices, generators, and IO
//!
//! The data substrate for the cuMF_SGD reproduction:
//!
//! * [`coo`] — COO sparse matrices (the paper's 12-byte-per-sample format),
//! * [`csr`] — CSR/CSC views for per-row and per-column traversal (ALS),
//! * [`synth`] — planted low-rank generators with Zipf-skewed popularity,
//! * [`presets`] — the paper's Netflix / Yahoo!Music / Hugewiki shapes
//!   (Table 2) plus laptop-scale synthetic stand-ins,
//! * [`io`] — LIBMF-compatible text and compact binary formats,
//! * [`split`] — random holdout splitting (the paper's Hugewiki protocol),
//! * [`stream`] — bounded-memory chunked readers and on-disk partitioning
//!   for out-of-core staging (§6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coo;
pub mod csr;
pub mod io;
pub mod presets;
pub mod split;
pub mod stream;
pub mod synth;

pub use coo::{CooMatrix, Entry};
pub use csr::CsrMatrix;
pub use presets::{
    hugewiki_like, netflix_like, yahoo_like, DatasetSpec, ALL, DEFAULT_K, DEFAULT_SCALE, HUGEWIKI,
    NETFLIX, YAHOO_MUSIC,
};
pub use split::holdout_split;
pub use stream::{partition_to_files, BinaryHeader, ChunkReader};
pub use synth::{generate, AliasTable, SynthConfig, SynthDataset};
