//! Streaming (out-of-core) access to binary rating files.
//!
//! Hugewiki's 3.07 B samples (~37 GB of COO) cannot be materialised in
//! host memory on most machines, let alone device memory; §6 of the paper
//! stages *blocks* of the rating matrix through the GPU. This module
//! provides the host side of that workflow:
//!
//! * [`ChunkReader`] — iterate a `CUMF` binary file (see [`crate::io`])
//!   in bounded-memory chunks;
//! * [`partition_to_files`] — split a rating file into per-grid-row block
//!   files on disk (the preprocessing step before staged training).

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::coo::CooMatrix;
use crate::io::DataError;

const HEADER_BYTES: u64 = 24; // magic + version + m + n + nnz

/// Header of a `CUMF` binary file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinaryHeader {
    /// Rows.
    pub m: u32,
    /// Columns.
    pub n: u32,
    /// Stored samples.
    pub nnz: u64,
}

fn read_header<R: Read>(r: &mut R) -> Result<BinaryHeader, DataError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != b"CUMF" {
        return Err(DataError::Parse {
            line: 0,
            message: "bad magic: not a CUMF binary file".into(),
        });
    }
    let mut b4 = [0u8; 4];
    r.read_exact(&mut b4)?;
    let version = u32::from_le_bytes(b4);
    if version != 1 {
        return Err(DataError::Parse {
            line: 0,
            message: format!("unsupported version {version}"),
        });
    }
    r.read_exact(&mut b4)?;
    let m = u32::from_le_bytes(b4);
    r.read_exact(&mut b4)?;
    let n = u32::from_le_bytes(b4);
    let mut b8 = [0u8; 8];
    r.read_exact(&mut b8)?;
    Ok(BinaryHeader {
        m,
        n,
        nnz: u64::from_le_bytes(b8),
    })
}

/// Reads a `CUMF` binary file chunk by chunk with bounded memory.
///
/// The on-disk layout stores the three COO arrays *separately* (all `u`s,
/// then all `v`s, then all `r`s), so the reader seeks between three
/// cursors per chunk — one pass, three sequential streams.
#[derive(Debug)]
pub struct ChunkReader {
    file: BufReader<File>,
    header: BinaryHeader,
    chunk: usize,
    next: u64,
}

impl ChunkReader {
    /// Opens a binary rating file for chunked reading.
    pub fn open(path: impl AsRef<Path>, chunk: usize) -> Result<Self, DataError> {
        assert!(chunk > 0, "chunk size must be positive");
        let mut file = BufReader::new(File::open(path)?);
        let header = read_header(&mut file)?;
        Ok(ChunkReader {
            file,
            header,
            chunk,
            next: 0,
        })
    }

    /// The file's header.
    pub fn header(&self) -> BinaryHeader {
        self.header
    }

    /// Samples not yet read.
    pub fn remaining(&self) -> u64 {
        self.header.nnz - self.next
    }

    /// Reads the next chunk, or `None` at end of data.
    pub fn next_chunk(&mut self) -> Result<Option<CooMatrix>, DataError> {
        if self.next >= self.header.nnz {
            return Ok(None);
        }
        let count = (self.chunk as u64).min(self.header.nnz - self.next) as usize;
        let nnz = self.header.nnz;
        let base_u = HEADER_BYTES + self.next * 4;
        let base_v = HEADER_BYTES + nnz * 4 + self.next * 4;
        let base_r = HEADER_BYTES + nnz * 8 + self.next * 4;

        let mut us = vec![0u32; count];
        let mut vs = vec![0u32; count];
        let mut rs = vec![0f32; count];
        self.read_u32s_at(base_u, &mut us)?;
        self.read_u32s_at(base_v, &mut vs)?;
        self.read_f32s_at(base_r, &mut rs)?;

        let mut coo = CooMatrix::with_capacity(self.header.m, self.header.n, count);
        for i in 0..count {
            if us[i] >= self.header.m || vs[i] >= self.header.n {
                return Err(DataError::Parse {
                    line: 0,
                    message: format!("sample {} out of bounds", self.next + i as u64),
                });
            }
            coo.push(us[i], vs[i], rs[i]);
        }
        self.next += count as u64;
        Ok(Some(coo))
    }

    fn read_u32s_at(&mut self, offset: u64, out: &mut [u32]) -> Result<(), DataError> {
        self.file.seek(SeekFrom::Start(offset))?;
        let mut buf = [0u8; 4];
        for slot in out {
            self.file.read_exact(&mut buf)?;
            *slot = u32::from_le_bytes(buf);
        }
        Ok(())
    }

    fn read_f32s_at(&mut self, offset: u64, out: &mut [f32]) -> Result<(), DataError> {
        self.file.seek(SeekFrom::Start(offset))?;
        let mut buf = [0u8; 4];
        for slot in out {
            self.file.read_exact(&mut buf)?;
            *slot = f32::from_le_bytes(buf);
        }
        Ok(())
    }
}

/// Splits a binary rating file into `parts` per-grid-row block files
/// (`<stem>.block<i>.bin`), streaming with bounded memory — the
/// preprocessing step of the paper's §6.1 partitioning for data sets that
/// never fit in memory. Returns the written paths.
pub fn partition_to_files(
    input: impl AsRef<Path>,
    out_dir: impl AsRef<Path>,
    parts: u32,
    chunk: usize,
) -> Result<Vec<PathBuf>, DataError> {
    assert!(parts > 0);
    let mut reader = ChunkReader::open(&input, chunk)?;
    let header = reader.header();
    std::fs::create_dir_all(&out_dir)?;
    let stem = input
        .as_ref()
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("data")
        .to_string();

    // Accumulate per-part triples in memory per *chunk*, appending to
    // temporary raw files; then assemble headers at the end.
    let mut buffers: Vec<(Vec<u32>, Vec<u32>, Vec<f32>)> =
        (0..parts).map(|_| Default::default()).collect();
    while let Some(chunk_coo) = reader.next_chunk()? {
        for e in chunk_coo.iter() {
            let part = ((e.u as u64 * parts as u64) / header.m as u64).min(parts as u64 - 1);
            let (us, vs, rs) = &mut buffers[part as usize];
            us.push(e.u);
            vs.push(e.v);
            rs.push(e.r);
        }
    }
    let mut paths = Vec::with_capacity(parts as usize);
    for (i, (us, vs, rs)) in buffers.iter().enumerate() {
        let path = out_dir.as_ref().join(format!("{stem}.block{i}.bin"));
        let mut w = BufWriter::new(File::create(&path)?);
        w.write_all(b"CUMF")?;
        w.write_all(&1u32.to_le_bytes())?;
        w.write_all(&header.m.to_le_bytes())?;
        w.write_all(&header.n.to_le_bytes())?;
        w.write_all(&(us.len() as u64).to_le_bytes())?;
        for &u in us {
            w.write_all(&u.to_le_bytes())?;
        }
        for &v in vs {
            w.write_all(&v.to_le_bytes())?;
        }
        for &r in rs {
            w.write_all(&r.to_le_bytes())?;
        }
        w.flush()?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{read_binary_file, write_binary_file};

    fn sample(n: usize) -> CooMatrix {
        let mut coo = CooMatrix::new(64, 32);
        for i in 0..n {
            coo.push((i % 64) as u32, ((i * 7) % 32) as u32, i as f32 * 0.5);
        }
        coo
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cumf_stream_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn chunked_read_reassembles_file() {
        let coo = sample(1000);
        let path = tmp("chunked.bin");
        write_binary_file(&path, &coo).unwrap();
        let mut reader = ChunkReader::open(&path, 128).unwrap();
        assert_eq!(
            reader.header(),
            BinaryHeader {
                m: 64,
                n: 32,
                nnz: 1000
            }
        );
        let mut rebuilt = CooMatrix::new(64, 32);
        let mut chunks = 0;
        while let Some(chunk) = reader.next_chunk().unwrap() {
            for e in chunk.iter() {
                rebuilt.push(e.u, e.v, e.r);
            }
            chunks += 1;
        }
        assert_eq!(chunks, 8); // ceil(1000/128)
        assert_eq!(rebuilt, coo);
        assert_eq!(reader.remaining(), 0);
    }

    #[test]
    fn chunk_larger_than_file_is_one_shot() {
        let coo = sample(10);
        let path = tmp("oneshot.bin");
        write_binary_file(&path, &coo).unwrap();
        let mut reader = ChunkReader::open(&path, 1_000_000).unwrap();
        let chunk = reader.next_chunk().unwrap().unwrap();
        assert_eq!(chunk, coo);
        assert!(reader.next_chunk().unwrap().is_none());
    }

    #[test]
    fn partition_covers_everything_by_row_stripe() {
        let coo = sample(500);
        let path = tmp("topart.bin");
        write_binary_file(&path, &coo).unwrap();
        let outdir = tmp("parts");
        let paths = partition_to_files(&path, &outdir, 4, 64).unwrap();
        assert_eq!(paths.len(), 4);
        let mut total = 0;
        for (i, p) in paths.iter().enumerate() {
            let block = read_binary_file(p).unwrap();
            total += block.nnz();
            let lo = (i as u64 * 64 / 4) as u32;
            let hi = ((i as u64 + 1) * 64 / 4) as u32;
            for e in block.iter() {
                assert!(e.u >= lo && e.u < hi, "row {} outside stripe {i}", e.u);
            }
        }
        assert_eq!(total, 500);
        let _ = std::fs::remove_dir_all(tmp(""));
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("bad.bin");
        std::fs::write(&path, b"NOPE12345678901234567890").unwrap();
        let err = ChunkReader::open(&path, 8).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }
}
