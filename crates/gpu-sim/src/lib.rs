//! # cumf-gpu-sim — a GPU machine model for memory-bound SGD
//!
//! The cuMF_SGD paper (HPDC'17) is evaluated on NVIDIA Maxwell/Pascal GPUs.
//! This crate substitutes that hardware with a first-principles performance
//! model, driven by the paper's own characterisation (§2.3): SGD-based
//! matrix factorization has ~0.43 flops/byte and therefore sits on the
//! *bandwidth roof* of every platform it runs on. Consequently:
//!
//! * throughput = achieved bandwidth ÷ bytes-per-update ([`kernel`]),
//! * achieved bandwidth is a function of occupancy ([`arch`]),
//! * CPU baselines are cache-amplified versions of the same law
//!   ([`memory`]),
//! * scheduler saturation is queueing on critical sections ([`executor`],
//!   built on the `cumf-des` discrete-event engine),
//! * out-of-core staging is a three-stage flow-shop over the CPU↔GPU link
//!   ([`pipeline`]).
//!
//! All specs are calibrated against numbers the paper itself reports
//! (Fig 2, Fig 5, Fig 10, Fig 11, Table 5) and every calibration is
//! unit-tested against the corresponding paper figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod executor;
pub mod kernel;
pub mod memory;
pub mod occupancy;
pub mod pipeline;
pub mod roofline;
pub mod warp;

pub use arch::{
    maxwell_platform, pascal_platform, CpuSpec, GpuSpec, LinkSpec, Platform, HPC_NETWORK,
    NOMAD_HPC_NODE, NVLINK, P100_PASCAL, PCIE3_X16, TITAN_X_MAXWELL, XEON_E5_2670X2,
};
pub use executor::{
    simulate_throughput, simulate_throughput_degraded, SchedulerModel, ThroughputConfig,
    ThroughputResult,
};
pub use kernel::{Precision, RatingAccess, SgdUpdateCost, COO_SAMPLE_BYTES};
pub use memory::{lines_touched, CpuCacheModel};
pub use occupancy::{
    blocks_per_sm, max_workers, KernelFootprint, SmResources, SM_MAXWELL, SM_PASCAL,
};
pub use pipeline::{overlapped, serial, BlockJob, PipelineResult};
pub use roofline::Roofline;
pub use warp::{warp_dot, warp_reduce_sum, warp_sgd_update, WARP_SIZE};
