//! Throughput simulation of parallel SGD workers under a scheduling policy.
//!
//! This is the machinery behind Figs 5(b), 7(a), 10 and 11 and Table 5:
//! `s` parallel workers (GPU thread blocks or CPU threads) repeatedly
//! (1) obtain work from a scheduler and (2) stream the memory traffic of a
//! chunk of SGD updates. The memory phase is charged at the platform's
//! occupancy-dependent per-worker bandwidth; the scheduling phase contends
//! on simulated resources (a critical-section server for LIBMF's global
//! table, a column-lock array for wavefront-update). Saturation behaviour
//! — LIBMF flat-lining at ~30 CPU threads / ~240 GPU blocks while
//! batch-Hogwild! and wavefront-update scale to the hardware limit —
//! *emerges* from queueing, it is not curve-fit.

use std::cell::Cell;
use std::rc::Rc;

use cumf_des::{Block, Ctx, LockId, Process, ServerId, SimTime, Simulation};

use crate::SgdUpdateCost;

/// Scheduling-policy overhead models (§5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerModel {
    /// §5.1 batch-Hogwild!: each worker grabs `f` consecutive samples with a
    /// single atomic counter bump — constant, uncontended overhead.
    BatchHogwild {
        /// Samples fetched per grab (`f`, paper default 256).
        batch: u32,
        /// Cost of the atomic counter bump + loop bookkeeping, seconds.
        per_batch_overhead_s: f64,
    },
    /// §5.2 wavefront-update: workers own a grid row; before each wave they
    /// check/acquire one column lock (a local, not global, lookup).
    Wavefront {
        /// Number of grid columns (= waves per epoch).
        grid_cols: u32,
        /// Per-block bookkeeping cost, seconds.
        per_block_overhead_s: f64,
        /// Relative jitter of per-block work (workload imbalance), e.g. 0.1.
        imbalance: f64,
    },
    /// LIBMF's global scheduling table: one exclusive critical section per
    /// block grab, holding it for an `O(a²)` table search.
    GlobalTable {
        /// Grid dimension (`a×a` blocks).
        a: u32,
        /// Cost per table entry scanned, seconds.
        per_entry_s: f64,
    },
    /// The paper's `O(a)` optimised lookup ("LIBMF-GPU" in Fig 5b): still a
    /// global critical section, but scanning only `a` rows + `a` columns.
    RowColScan {
        /// Grid dimension.
        a: u32,
        /// Cost per entry scanned, seconds.
        per_entry_s: f64,
    },
}

impl SchedulerModel {
    /// Updates processed per scheduler interaction for a data set of
    /// `total_updates` samples spread over the policy's grid.
    fn chunk_updates(&self, total_updates: u64, workers: u32) -> u64 {
        let chunk = match *self {
            SchedulerModel::BatchHogwild { batch, .. } => batch as u64,
            SchedulerModel::Wavefront { grid_cols, .. } => {
                // One block per wave: grid is workers x grid_cols.
                total_updates / (workers as u64 * grid_cols as u64)
            }
            SchedulerModel::GlobalTable { a, .. } | SchedulerModel::RowColScan { a, .. } => {
                total_updates / (a as u64 * a as u64)
            }
        };
        chunk.max(1)
    }

    /// Scheduler hold time per interaction (time inside the critical
    /// section, or the uncontended constant for lock-free schemes).
    fn hold_time(&self) -> f64 {
        match *self {
            SchedulerModel::BatchHogwild {
                per_batch_overhead_s,
                ..
            } => per_batch_overhead_s,
            SchedulerModel::Wavefront {
                per_block_overhead_s,
                ..
            } => per_block_overhead_s,
            SchedulerModel::GlobalTable { a, per_entry_s } => a as f64 * a as f64 * per_entry_s,
            SchedulerModel::RowColScan { a, per_entry_s } => 2.0 * a as f64 * per_entry_s,
        }
    }

    /// True if the policy serialises scheduling through a global lock.
    fn is_global(&self) -> bool {
        matches!(
            self,
            SchedulerModel::GlobalTable { .. } | SchedulerModel::RowColScan { .. }
        )
    }
}

/// Configuration for one throughput simulation.
#[derive(Debug, Clone)]
pub struct ThroughputConfig {
    /// Number of parallel workers (thread blocks / CPU threads).
    pub workers: u32,
    /// Total effective bandwidth available to the worker ensemble, bytes/s
    /// (from [`crate::arch::GpuSpec::effective_bw`] or the CPU cache model).
    pub total_bandwidth: f64,
    /// Per-update cost model.
    pub cost: SgdUpdateCost,
    /// Scheduling policy.
    pub scheduler: SchedulerModel,
    /// Number of SGD updates to execute (e.g. one epoch = N samples).
    pub total_updates: u64,
}

/// Result of a throughput simulation.
#[derive(Debug, Clone)]
pub struct ThroughputResult {
    /// Simulated elapsed time.
    pub elapsed: SimTime,
    /// Updates executed.
    pub updates: u64,
    /// Eq. 7: `#Updates/s`.
    pub updates_per_sec: f64,
    /// Effective bandwidth consumed by the compute, bytes/s.
    pub achieved_bw: f64,
    /// DRAM bytes the executor *actually charged* to compute phases,
    /// accumulated integer-exactly as workers execute chunks. This is the
    /// ground truth the static cost certificate is checked against:
    /// `bytes_charged == updates × SgdUpdateCost::bytes()` must hold
    /// bit-for-bit, or the simulator and the cost model have drifted.
    pub bytes_charged: u64,
    /// Utilisation of the global scheduler critical section (0 when the
    /// policy has none).
    pub scheduler_utilisation: f64,
    /// Mean time a worker waited for the scheduler, seconds.
    pub mean_sched_wait: f64,
}

/// Deterministic per-(worker, wave) jitter in `[-1, 1]` (splitmix64 hash).
fn jitter(worker: u32, wave: u64) -> f64 {
    let mut z = (worker as u64) << 32 | (wave & 0xffff_ffff);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z as f64 / u64::MAX as f64) * 2.0 - 1.0
}

/// One simulated parallel worker (a thread block / CPU thread).
struct Worker {
    id: u32,
    remaining: u64,
    chunk: u64,
    chunk_time: f64, // seconds of memory streaming per chunk at fair share
    hold: SimTime,
    scheduler: SchedulerModel,
    sched_server: Option<ServerId>,
    col_locks: Option<LockId>,
    // Wavefront state: current wave index and column order offset.
    wave: u64,
    held_col: Option<usize>,
    phase: Phase,
    obs_launches: cumf_obs::Counter,
    // Per-update DRAM bytes and the run-wide charge accumulator (the DES
    // is single-threaded, so a shared Cell is race-free).
    bytes_per_update: u64,
    bytes_charged: Rc<Cell<u64>>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Schedule,
    Compute,
    FinishChunk,
}

impl Process for Worker {
    fn resume(&mut self, ctx: &mut Ctx<'_>) -> Block {
        loop {
            match self.phase {
                Phase::Schedule => {
                    if self.remaining == 0 {
                        if let (Some(locks), Some(col)) = (self.col_locks, self.held_col.take()) {
                            ctx.release_key(locks, col);
                        }
                        return Block::Done;
                    }
                    self.phase = Phase::Compute;
                    match self.scheduler {
                        SchedulerModel::Wavefront { grid_cols, .. } => {
                            let locks = self.col_locks.expect("wavefront needs locks");
                            // Release previous column, acquire the next in
                            // this worker's (rotated) sequence.
                            if let Some(col) = self.held_col.take() {
                                ctx.release_key(locks, col);
                            }
                            let col = ((self.id as u64 + self.wave) % grid_cols as u64) as usize;
                            self.held_col = Some(col);
                            return Block::AcquireKey {
                                lock: locks,
                                key: col,
                            };
                        }
                        _ if self.sched_server.is_some() => {
                            return Block::Service {
                                server: self.sched_server.unwrap(),
                                hold: self.hold,
                            };
                        }
                        _ => {
                            // Lock-free constant overhead: plain delay.
                            return Block::Delay(self.hold);
                        }
                    }
                }
                Phase::Compute => {
                    let n = self.remaining.min(self.chunk);
                    let mut t = self.chunk_time * n as f64 / self.chunk as f64;
                    if let SchedulerModel::Wavefront { imbalance, .. } = self.scheduler {
                        t *= 1.0 + imbalance * jitter(self.id, self.wave);
                    }
                    self.remaining -= n;
                    self.wave += 1;
                    self.phase = Phase::FinishChunk;
                    self.bytes_charged
                        .set(self.bytes_charged.get() + n * self.bytes_per_update);
                    self.obs_launches.inc();
                    if cumf_obs::enabled() {
                        cumf_obs::span_sim(
                            "gpu-sim",
                            "kernel-launch",
                            self.id,
                            ctx.now().as_secs(),
                            t,
                            vec![("updates", n as f64)],
                        );
                    }
                    return Block::Delay(SimTime::from_secs(t));
                }
                Phase::FinishChunk => {
                    self.phase = Phase::Schedule;
                    // Loop back to schedule the next chunk immediately.
                }
            }
        }
    }

    fn label(&self) -> &str {
        "sgd-worker"
    }
}

/// Runs the throughput simulation and returns Eq. 7 metrics.
pub fn simulate_throughput(config: &ThroughputConfig) -> ThroughputResult {
    assert!(config.workers > 0, "need at least one worker");
    assert!(config.total_bandwidth > 0.0, "bandwidth must be positive");
    let mut sim = Simulation::new();

    let sched_server = if config.scheduler.is_global() {
        Some(sim.add_server("scheduler", 1))
    } else {
        None
    };
    let col_locks = match config.scheduler {
        SchedulerModel::Wavefront { grid_cols, .. } => {
            assert!(
                grid_cols >= config.workers,
                "wavefront needs at least as many columns as workers \
                 (got {} cols for {} workers)",
                grid_cols,
                config.workers
            );
            Some(sim.add_lock("columns", grid_cols as usize))
        }
        _ => None,
    };

    let chunk = config
        .scheduler
        .chunk_updates(config.total_updates, config.workers);
    let per_worker_bw = config.total_bandwidth / config.workers as f64;
    let chunk_bytes = chunk as f64 * config.cost.bytes() as f64;
    let chunk_time = chunk_bytes / per_worker_bw;
    let hold = SimTime::from_secs(config.scheduler.hold_time());

    let obs_launches = cumf_obs::counter(
        "cumf_gpusim_kernel_chunks_total",
        "Compute chunks (modelled kernel work items) executed by simulated workers",
    );

    // Spread updates across workers; the first `rem` workers take one more
    // chunk-sized share so every update is accounted for.
    let bytes_charged = Rc::new(Cell::new(0u64));
    let base = config.total_updates / config.workers as u64;
    let rem = (config.total_updates % config.workers as u64) as u32;
    for id in 0..config.workers {
        let mine = base + u64::from(id < rem);
        if mine == 0 {
            continue;
        }
        sim.spawn(Box::new(Worker {
            id,
            remaining: mine,
            chunk,
            chunk_time,
            hold,
            scheduler: config.scheduler,
            sched_server,
            col_locks,
            wave: 0,
            held_col: None,
            phase: Phase::Schedule,
            obs_launches: obs_launches.clone(),
            bytes_per_update: config.cost.bytes(),
            bytes_charged: bytes_charged.clone(),
        }));
    }

    let report = sim.run(None);
    assert_eq!(
        sim.live_processes(),
        0,
        "scheduler deadlock: {} workers never finished (wavefront grids \
         with grid_cols == workers can form waiting cycles; use >= 2x)",
        sim.live_processes()
    );
    let elapsed = report.end_time;
    let secs = elapsed.as_secs().max(f64::MIN_POSITIVE);
    let updates_per_sec = config.total_updates as f64 / secs;
    let result = ThroughputResult {
        elapsed,
        updates: config.total_updates,
        updates_per_sec,
        achieved_bw: updates_per_sec * config.cost.bytes() as f64,
        bytes_charged: bytes_charged.get(),
        scheduler_utilisation: report
            .server("scheduler")
            .map(|s| s.utilisation)
            .unwrap_or(0.0),
        mean_sched_wait: report
            .server("scheduler")
            .map(|s| s.mean_wait)
            .unwrap_or(0.0),
    };
    if cumf_obs::enabled() {
        cumf_obs::counter("cumf_gpusim_sims_total", "Throughput simulations executed").inc();
        cumf_obs::gauge(
            "cumf_gpusim_updates_per_sec",
            "Eq. 7 updates/s of the most recent throughput simulation",
        )
        .set(result.updates_per_sec);
        cumf_obs::gauge(
            "cumf_gpusim_achieved_bw_bytes_per_sec",
            "Bandwidth consumed by the simulated compute, bytes/s",
        )
        .set(result.achieved_bw);
        cumf_obs::gauge(
            "cumf_gpusim_bw_utilisation",
            "Achieved bandwidth over the configured total bandwidth",
        )
        .set(result.achieved_bw / config.total_bandwidth);
        cumf_obs::gauge(
            "cumf_gpusim_scheduler_utilisation",
            "Utilisation of the global scheduler critical section (0 if lock-free)",
        )
        .set(result.scheduler_utilisation);
        cumf_obs::gauge(
            "cumf_gpusim_mean_sched_wait_seconds",
            "Mean time a worker waited for the global scheduler, seconds",
        )
        .set(result.mean_sched_wait);
    }
    result
}

/// [`simulate_throughput`] on a faulted device: `sm_survival` is the
/// fraction of streaming multiprocessors still healthy (SM throttling, or
/// whole-device loss folded into a multi-GPU ensemble). Worker slots and
/// bandwidth shrink together — the resident-block limit is per-SM — so the
/// quoted throughput hit is what the fault-injection supervisor records
/// when it degrades a run. Returns the degraded result together with the
/// throughput ratio `degraded / healthy` (1.0 means no hit).
pub fn simulate_throughput_degraded(
    config: &ThroughputConfig,
    sm_survival: f64,
) -> (ThroughputResult, f64) {
    let healthy = simulate_throughput(config);
    let sm_survival = sm_survival.clamp(f64::MIN_POSITIVE, 1.0);
    let degraded = simulate_throughput(&ThroughputConfig {
        workers: ((config.workers as f64 * sm_survival).floor() as u32).max(1),
        total_bandwidth: config.total_bandwidth * sm_survival,
        ..*config
    });
    let ratio = if healthy.updates_per_sec > 0.0 {
        degraded.updates_per_sec / healthy.updates_per_sec
    } else {
        1.0
    };
    (degraded, ratio)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::TITAN_X_MAXWELL;

    const N: u64 = 1_000_000;

    fn batch_hogwild(workers: u32) -> ThroughputResult {
        let gpu = &TITAN_X_MAXWELL;
        simulate_throughput(&ThroughputConfig {
            workers,
            total_bandwidth: gpu.effective_bw(workers),
            cost: SgdUpdateCost::cumf(128),
            scheduler: SchedulerModel::BatchHogwild {
                batch: 256,
                per_batch_overhead_s: 50e-9,
            },
            total_updates: N,
        })
    }

    #[test]
    fn batch_hogwild_reaches_roofline() {
        let r = batch_hogwild(768);
        // At full occupancy the rate must sit within a few percent of
        // bandwidth / bytes-per-update (the tiny atomic overhead).
        let roof = SgdUpdateCost::cumf(128).updates_per_sec(TITAN_X_MAXWELL.effective_bw(768));
        assert!(
            r.updates_per_sec > 0.95 * roof,
            "{} vs {}",
            r.updates_per_sec,
            roof
        );
        assert!(r.updates_per_sec <= roof * 1.001);
        assert_eq!(r.scheduler_utilisation, 0.0);
    }

    #[test]
    fn batch_hogwild_scales_near_linearly() {
        let quarter = batch_hogwild(192).updates_per_sec;
        let full = batch_hogwild(768).updates_per_sec;
        let speedup = full / quarter;
        assert!(speedup > 3.0 && speedup < 4.0, "speedup {speedup}");
    }

    #[test]
    fn wavefront_close_to_batch_hogwild() {
        let gpu = &TITAN_X_MAXWELL;
        let workers = 256;
        let wf = simulate_throughput(&ThroughputConfig {
            workers,
            total_bandwidth: gpu.effective_bw(workers),
            cost: SgdUpdateCost::cumf(128),
            scheduler: SchedulerModel::Wavefront {
                grid_cols: workers * 4,
                per_block_overhead_s: 100e-9,
                imbalance: 0.1,
            },
            total_updates: N,
        });
        let bh = batch_hogwild(workers);
        let ratio = wf.updates_per_sec / bh.updates_per_sec;
        assert!(ratio > 0.85 && ratio < 1.05, "wavefront/batch = {ratio}");
    }

    #[test]
    fn global_table_saturates() {
        // With the calibrated GPU per-entry cost the O(a) scan policy
        // saturates well below the hardware's 768 workers (Fig 5b).
        let gpu = &TITAN_X_MAXWELL;
        let run = |workers: u32| {
            simulate_throughput(&ThroughputConfig {
                workers,
                total_bandwidth: gpu.effective_bw(workers),
                cost: SgdUpdateCost::cumf(128),
                scheduler: SchedulerModel::RowColScan {
                    a: 100,
                    per_entry_s: 0.6e-6,
                },
                total_updates: 10 * N,
            })
            .updates_per_sec
        };
        let r240 = run(240);
        let r768 = run(768);
        assert!(
            r768 < r240 * 1.15,
            "table scheduler must flat-line: 240w={r240:.3e} 768w={r768:.3e}"
        );
        let bh = batch_hogwild(768).updates_per_sec;
        assert!(r768 < 0.7 * bh, "table scheduler must trail batch-hogwild");
    }

    #[test]
    fn global_table_utilisation_reported() {
        let r = simulate_throughput(&ThroughputConfig {
            workers: 64,
            total_bandwidth: 10e9,
            cost: SgdUpdateCost::cpu_f32(128),
            scheduler: SchedulerModel::GlobalTable {
                a: 32,
                per_entry_s: 1e-9,
            },
            total_updates: N,
        });
        assert!(r.scheduler_utilisation > 0.0);
        assert!(r.elapsed.as_secs() > 0.0);
    }

    #[test]
    fn single_worker_serial_rate() {
        let r = batch_hogwild(1);
        let expected = SgdUpdateCost::cumf(128).updates_per_sec(TITAN_X_MAXWELL.effective_bw(1));
        assert!((r.updates_per_sec - expected).abs() / expected < 0.05);
    }

    #[test]
    #[should_panic(expected = "at least as many columns")]
    fn wavefront_rejects_too_few_columns() {
        let _ = simulate_throughput(&ThroughputConfig {
            workers: 8,
            total_bandwidth: 1e9,
            cost: SgdUpdateCost::cumf(32),
            scheduler: SchedulerModel::Wavefront {
                grid_cols: 4,
                per_block_overhead_s: 0.0,
                imbalance: 0.0,
            },
            total_updates: 1000,
        });
    }

    #[test]
    fn bytes_charged_is_integer_exact() {
        // Every executed update must be charged exactly bytes() DRAM bytes,
        // regardless of scheduler, worker count, or ragged chunk splits.
        for (workers, updates) in [(1u32, 999u64), (7, 10_001), (64, 123_457)] {
            for cost in [SgdUpdateCost::cumf(31), SgdUpdateCost::cpu_f32(16)] {
                let r = simulate_throughput(&ThroughputConfig {
                    workers,
                    total_bandwidth: 1e9,
                    cost,
                    scheduler: SchedulerModel::BatchHogwild {
                        batch: 256,
                        per_batch_overhead_s: 50e-9,
                    },
                    total_updates: updates,
                });
                assert_eq!(r.bytes_charged, updates * cost.bytes());
            }
        }
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        for w in 0..64 {
            for wave in 0..64 {
                let j = jitter(w, wave);
                assert!((-1.0..=1.0).contains(&j));
                assert_eq!(j, jitter(w, wave));
            }
        }
    }
}
