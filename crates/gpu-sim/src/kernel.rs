//! Cost model of one SGD update (the paper's §2.3 characterisation).
//!
//! One SGD update on sample `r_{u,v}` (Algorithm 1, lines 8–10):
//!
//! 1. read the sample (COO: 2 ints + 1 float = 12 bytes),
//! 2. read feature vectors `p_u`, `q_v` (2·k elements),
//! 3. dot product + error (2k mul/add + log₂k-step reduction),
//! 4. update and write back both vectors (2·k elements).
//!
//! Eq. 5 of the paper:
//!
//! ```text
//! Flops/Byte = (6k + Σ_{i=1}^{log k} k/2^i) / (sizeof(r) + 4k·sizeof(elem))
//! ```
//!
//! At `k = 128`, single precision, this is **0.43 flops/byte** — firmly
//! memory-bound on hardware with ~10 flops/byte balance, which is the
//! paper's core observation and the foundation of every model in this crate.

/// Element width used to store the feature matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// 4-byte IEEE 754 single precision.
    F32,
    /// 2-byte IEEE 754 half precision — cuMF_SGD's storage format (§4),
    /// halving feature-matrix bandwidth.
    F16,
}

impl Precision {
    /// Bytes per element.
    pub fn bytes(self) -> u32 {
        match self {
            Precision::F32 => 4,
            Precision::F16 => 2,
        }
    }
}

/// How the rating-matrix sample itself is fetched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RatingAccess {
    /// Sequential batch fetch (batch-Hogwild!, Eq. 8): every byte of each
    /// cache line is consumed, so a sample costs its true 12 bytes.
    Streamed,
    /// Random single-sample fetch (plain Hogwild!): each access drags a full
    /// cache line of which only 12 bytes are used.
    RandomLine {
        /// Cache line size in bytes (128 on the paper GPUs).
        line_bytes: u32,
    },
}

/// Size of one COO sample: two `u32` coordinates + one `f32` rating.
pub const COO_SAMPLE_BYTES: u32 = 12;

/// Per-update cost model for SGD matrix factorization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdUpdateCost {
    /// Feature dimension.
    pub k: u32,
    /// Feature storage precision.
    pub precision: Precision,
    /// Rating fetch pattern.
    pub rating_access: RatingAccess,
}

impl SgdUpdateCost {
    /// Standard cuMF_SGD configuration: half precision, streamed ratings.
    pub fn cumf(k: u32) -> Self {
        SgdUpdateCost {
            k,
            precision: Precision::F16,
            rating_access: RatingAccess::Streamed,
        }
    }

    /// CPU baseline configuration (LIBMF): single precision, streamed.
    pub fn cpu_f32(k: u32) -> Self {
        SgdUpdateCost {
            k,
            precision: Precision::F32,
            rating_access: RatingAccess::Streamed,
        }
    }

    /// Floating point operations per update: `6k` vector work plus the
    /// `Σ_{i=1}^{log₂ k} k/2^i = k - 1` warp-shuffle reduction tree
    /// (numerator of Eq. 5).
    pub fn flops(&self) -> u64 {
        let k = self.k as u64;
        let mut reduction = 0;
        let mut i = k;
        while i > 1 {
            i /= 2;
            reduction += i;
        }
        6 * k + reduction
    }

    /// Bytes of the rating fetch alone (respecting the access pattern's
    /// line-granular accounting for random single-sample fetches).
    pub fn rating_bytes(&self) -> u64 {
        let bytes = match self.rating_access {
            RatingAccess::Streamed => COO_SAMPLE_BYTES,
            RatingAccess::RandomLine { line_bytes } => line_bytes.max(COO_SAMPLE_BYTES),
        };
        bytes as u64
    }

    /// Feature-matrix bytes per update: read + write of `p_u` and `q_v`,
    /// i.e. `4·k` elements at the storage precision. This is the traffic
    /// half-precision halves (§4) — exactly `2·k·sizeof(elem)` loads plus
    /// the same in stores, for *any* `k`, odd or even.
    pub fn feature_bytes(&self) -> u64 {
        4 * self.k as u64 * self.precision.bytes() as u64
    }

    /// DRAM bytes touched per update (denominator of Eq. 5 plus the rating
    /// fetch pattern): rating sample + read and write of `p_u` and `q_v`.
    pub fn bytes(&self) -> u64 {
        self.rating_bytes() + self.feature_bytes()
    }

    /// Eq. 5: the flops-to-bytes ratio of one update.
    pub fn flops_per_byte(&self) -> f64 {
        self.flops() as f64 / self.bytes() as f64
    }

    /// Updates per second sustainable at `bandwidth` bytes/s under the
    /// roofline model (§2.3: SGD-MF sits on the bandwidth roof).
    pub fn updates_per_sec(&self, bandwidth: f64) -> f64 {
        bandwidth / self.bytes() as f64
    }

    /// Effective bandwidth implied by an observed update rate (inverse of
    /// [`Self::updates_per_sec`]) — how Figs 10(b) and 11(b) are derived
    /// from Figs 10(a) and 11(a).
    pub fn bandwidth_for_rate(&self, updates_per_sec: f64) -> f64 {
        updates_per_sec * self.bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq5_reproduces_the_papers_ratio() {
        // §2.3: k = 128, f32, COO 12 B -> 0.43 flops/byte.
        let cost = SgdUpdateCost::cpu_f32(128);
        assert_eq!(cost.flops(), 6 * 128 + 127);
        assert_eq!(cost.bytes(), 12 + 4 * 128 * 4);
        let r = cost.flops_per_byte();
        assert!((r - 0.43).abs() < 0.005, "flops/byte = {r}");
    }

    #[test]
    fn half_precision_halves_feature_traffic() {
        let f32c = SgdUpdateCost::cpu_f32(128);
        let f16c = SgdUpdateCost::cumf(128);
        assert_eq!(f32c.bytes(), 2060);
        assert_eq!(f16c.bytes(), 12 + 4 * 128 * 2); // 1036
                                                    // Same bandwidth sustains ~1.99x the update rate (§7.2, "twice the
                                                    // updates with the same bandwidth consumption").
        let speedup = f16c.updates_per_sec(266e9) / f32c.updates_per_sec(266e9);
        assert!((speedup - 2060.0 / 1036.0).abs() < 1e-9);
        assert!(speedup > 1.9);
    }

    #[test]
    fn paper_headline_update_rates_are_consistent() {
        // Table 5 + Fig 11: 267 M updates/s on Maxwell at 266 GB/s achieved
        // bandwidth with k=128 half precision.
        let cost = SgdUpdateCost::cumf(128);
        let rate = cost.updates_per_sec(266e9);
        assert!(
            (rate - 267e6).abs() / 267e6 < 0.05,
            "maxwell rate {:.1} M",
            rate / 1e6
        );
        // Pascal: 567 GB/s -> ~613 M updates/s? 567e9/1036 = 547M; the paper
        // reports 613 M (Netflix) — within ~12%, consistent with the cache
        // assist on rating reads the paper exploits (\_\_ldg, §4).
        let p = cost.updates_per_sec(567e9);
        assert!(p > 500e6 && p < 650e6);
    }

    #[test]
    fn random_line_access_inflates_bytes() {
        let hogwild = SgdUpdateCost {
            k: 128,
            precision: Precision::F16,
            rating_access: RatingAccess::RandomLine { line_bytes: 128 },
        };
        let batch = SgdUpdateCost::cumf(128);
        assert_eq!(hogwild.bytes() - batch.bytes(), (128 - 12) as u64);
        assert!(hogwild.updates_per_sec(1e9) < batch.updates_per_sec(1e9));
    }

    #[test]
    fn reduction_tree_flops() {
        // k=64: sum 32+16+8+4+2+1 = 63 = k-1.
        let c = SgdUpdateCost::cpu_f32(64);
        assert_eq!(c.flops(), 6 * 64 + 63);
        // Non-power-of-two k still terminates.
        let c = SgdUpdateCost::cpu_f32(100);
        assert!(c.flops() > 600);
    }

    #[test]
    fn odd_k_byte_accounting_is_consistent() {
        // Regression (k = 31): the f16 feature traffic must be exactly half
        // the f32 feature traffic even when k is odd — no truncating
        // divisions anywhere in the accounting.
        let f32c = SgdUpdateCost::cpu_f32(31);
        let f16c = SgdUpdateCost {
            k: 31,
            precision: Precision::F16,
            rating_access: RatingAccess::Streamed,
        };
        assert_eq!(f32c.feature_bytes(), 4 * 31 * 4);
        assert_eq!(f16c.feature_bytes(), 4 * 31 * 2);
        assert_eq!(f16c.feature_bytes() * 2, f32c.feature_bytes());
        assert_eq!(f32c.bytes(), f32c.rating_bytes() + f32c.feature_bytes());
        assert_eq!(f16c.bytes(), 12 + 248);
    }

    #[test]
    fn rate_bandwidth_round_trip() {
        let c = SgdUpdateCost::cumf(128);
        let bw = 300e9;
        let rate = c.updates_per_sec(bw);
        assert!((c.bandwidth_for_rate(rate) - bw).abs() < 1.0);
    }
}
