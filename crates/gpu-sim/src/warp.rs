//! SIMT warp emulation of the cuMF_SGD compute kernel (Fig 4 of the
//! paper).
//!
//! The CUDA kernel fixes the thread block to one 32-lane warp; lane `l`
//! owns the strided feature elements `l, l+32, l+64, …` (coalesced loads),
//! computes a partial dot product, and the warp reduces partials with
//! `__shfl_down` in a log₂32 = 5-step tree before broadcasting the error
//! term back to every lane. This module replays those semantics lane by
//! lane — including the *exact floating-point reduction order* — so the
//! Rust reproduction can assert that its portable kernel computes the same
//! updates a real warp would (up to the documented reduction-order
//! differences).

/// Number of lanes in a warp (fixed at 32 on all NVIDIA architectures the
/// paper uses).
pub const WARP_SIZE: usize = 32;

/// Emulates `__shfl_down_sync`-tree reduction over 32 lane values,
/// returning the lane-0 result (the value every lane sees after the
/// broadcast step). The tree adds lane `i+offset` into lane `i` for
/// offsets 16, 8, 4, 2, 1 — the exact order of Fig 4.
pub fn warp_reduce_sum(lanes: &[f32; WARP_SIZE]) -> f32 {
    let mut v = *lanes;
    let mut offset = WARP_SIZE / 2;
    while offset > 0 {
        for i in 0..offset {
            v[i] += v[i + offset];
        }
        offset /= 2;
    }
    v[0]
}

/// One warp-execution of the dot product `p·q` for a k-element row,
/// `k` a multiple of [`WARP_SIZE`]: each lane accumulates its strided
/// elements in registers (the ILP loop of §4), then the warp reduces.
pub fn warp_dot(p: &[f32], q: &[f32]) -> f32 {
    assert_eq!(p.len(), q.len());
    assert!(
        p.len().is_multiple_of(WARP_SIZE),
        "warp kernel requires k to be a multiple of 32 (got {})",
        p.len()
    );
    let mut partial = [0.0f32; WARP_SIZE];
    for (lane, acc) in partial.iter_mut().enumerate() {
        // Strided ownership: lane, lane+32, lane+64, ...
        let mut idx = lane;
        while idx < p.len() {
            *acc += p[idx] * q[idx];
            idx += WARP_SIZE;
        }
    }
    warp_reduce_sum(&partial)
}

/// One warp-execution of the full SGD update (Fig 4's kernel body):
/// coalesced loads, warp-reduced error, per-lane feature updates with the
/// *old* `p` used for the `q` update. Returns the error term.
pub fn warp_sgd_update(p: &mut [f32], q: &mut [f32], r: f32, gamma: f32, lambda: f32) -> f32 {
    let err = r - warp_dot(p, q);
    // Every lane updates its strided elements independently; registers
    // hold the old values (no re-read hazard inside the warp).
    for lane in 0..WARP_SIZE {
        let mut idx = lane;
        while idx < p.len() {
            let pi = p[idx];
            let qi = q[idx];
            p[idx] = pi + gamma * (err * qi - lambda * pi);
            q[idx] = qi + gamma * (err * pi - lambda * qi);
            idx += WARP_SIZE;
        }
    }
    err
}

/// Register pressure of the kernel: the CUDA compiler allocates 33
/// registers per thread at k = 128 (§4, "Register usage"). The §4 ILP
/// optimisation double-stages each lane's `p` and `q` elements (current +
/// next in flight), so a lane holds `4·(k/32)` feature registers plus a
/// fixed ~17 for pointers (64-bit = 2 registers each), sample fields,
/// error/γ/λ and loop state — 33 at k = 128, matching the compiler.
pub fn registers_per_lane(k: u32) -> u32 {
    4 * k.div_ceil(WARP_SIZE as u32) + 17
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SgdUpdateCost;

    fn vecs(k: usize, seed: u32) -> (Vec<f32>, Vec<f32>) {
        let f = |i: usize, s: u32| ((i as f32 + s as f32) * 0.37).sin() * 0.5;
        (
            (0..k).map(|i| f(i, seed)).collect(),
            (0..k).map(|i| f(i, seed + 13)).collect(),
        )
    }

    #[test]
    fn warp_reduce_is_a_sum() {
        let mut lanes = [0.0f32; WARP_SIZE];
        for (i, l) in lanes.iter_mut().enumerate() {
            *l = i as f32;
        }
        assert_eq!(warp_reduce_sum(&lanes), (0..32).sum::<i32>() as f32);
    }

    #[test]
    fn warp_dot_matches_scalar_within_fp_tolerance() {
        for k in [32usize, 64, 128, 256] {
            let (p, q) = vecs(k, 3);
            let warp = warp_dot(&p, &q);
            let scalar: f32 = p.iter().zip(&q).map(|(a, b)| a * b).sum();
            assert!(
                (warp - scalar).abs() <= 1e-5 * (1.0 + scalar.abs()),
                "k={k}: warp {warp} vs scalar {scalar}"
            );
        }
    }

    #[test]
    fn warp_update_matches_portable_kernel() {
        // The portable kernel (cumf-core) and the warp emulation must agree
        // on the model state after an update, up to reduction-order ULPs.
        for k in [32usize, 64, 128] {
            let (p0, q0) = vecs(k, 7);
            let (mut pw, mut qw) = (p0.clone(), q0.clone());
            let err_w = warp_sgd_update(&mut pw, &mut qw, 2.0, 0.05, 0.01);
            // Portable reference (scalar order).
            let (mut pr, mut qr) = (p0, q0);
            let dot: f32 = pr.iter().zip(&qr).map(|(a, b)| a * b).sum();
            let err_r = 2.0 - dot;
            for i in 0..k {
                let pi = pr[i];
                let qi = qr[i];
                pr[i] = pi + 0.05 * (err_r * qi - 0.01 * pi);
                qr[i] = qi + 0.05 * (err_r * pi - 0.01 * qi);
            }
            assert!((err_w - err_r).abs() < 1e-5);
            for i in 0..k {
                assert!((pw[i] - pr[i]).abs() < 1e-5, "k={k} p[{i}]");
                assert!((qw[i] - qr[i]).abs() < 1e-5, "k={k} q[{i}]");
            }
        }
    }

    #[test]
    #[should_panic(expected = "multiple of 32")]
    fn non_warp_multiple_rejected() {
        let (p, q) = vecs(48, 0);
        let _ = warp_dot(&p, &q);
    }

    #[test]
    fn register_estimate_matches_papers_33() {
        // §4: "allocating 33 registers for each thread is enough" at the
        // paper's k=128 (and the compiler reports the same for k=64..128).
        assert_eq!(registers_per_lane(128), 33);
        assert!(registers_per_lane(32) < 33);
    }

    #[test]
    fn repeated_warp_updates_reduce_error() {
        let (mut p, mut q) = vecs(64, 21);
        let mut last = f32::INFINITY;
        for _ in 0..100 {
            let err = warp_sgd_update(&mut p, &mut q, 1.5, 0.1, 0.0).abs();
            assert!(err <= last + 1e-4);
            last = err;
        }
        assert!(last < 1e-2, "converged error {last}");
        // Eq. 5 sanity: the modelled flops of this kernel match its shape.
        let cost = SgdUpdateCost::cumf(64);
        assert_eq!(cost.flops(), 6 * 64 + 63);
    }
}
