//! The roofline model (Williams et al., CACM'09) — cited directly by the
//! paper (§2.3, §5): *"According to the roofline model, the application is
//! limited by the memory bandwidth."*
//!
//! Attainable performance at operational intensity `I` (flops/byte) on a
//! machine with peak compute `F` (flops/s) and bandwidth `B` (bytes/s):
//!
//! ```text
//! P(I) = min(F, B · I)
//! ```
//!
//! The ridge point `F / B` separates memory-bound from compute-bound
//! kernels. SGD-MF's 0.43 flops/byte sits far left of every platform's
//! ridge, which is the paper's entire performance thesis.

use crate::arch::{CpuSpec, GpuSpec};
use crate::SgdUpdateCost;

/// A machine's roofline: peak compute and peak (effective) bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Peak floating-point rate, flops/s.
    pub peak_flops: f64,
    /// Peak sustainable memory bandwidth, bytes/s.
    pub peak_bandwidth: f64,
}

impl Roofline {
    /// Roofline of a GPU at full occupancy. Peak flops estimated from the
    /// marketing spec family (TITAN X ≈ 6.7 Tflops fp32; P100 ≈ 9.5); we
    /// derive from bandwidth × a per-family balance so new specs scale.
    pub fn for_gpu(gpu: &GpuSpec) -> Self {
        // Both paper GPUs have ~12-19 flops/byte machine balance; use the
        // published fp32 peaks for the two known parts.
        let peak_flops = match gpu.name {
            "TITAN X (Maxwell)" => 6.7e12,
            "P100 (Pascal)" => 9.5e12,
            _ => gpu.peak_bw * 15.0,
        };
        Roofline {
            peak_flops,
            peak_bandwidth: gpu.effective_bw(gpu.max_workers()),
        }
    }

    /// Roofline of a CPU socket (§2.3's "~600 GFLOPS, ~60 GB/s" example).
    pub fn for_cpu(cpu: &CpuSpec) -> Self {
        Roofline {
            peak_flops: cpu.peak_gflops * 1e9,
            peak_bandwidth: cpu.dram_bw,
        }
    }

    /// The ridge point: flops/byte above which the machine is
    /// compute-bound.
    pub fn ridge(&self) -> f64 {
        self.peak_flops / self.peak_bandwidth
    }

    /// Attainable flops/s at operational intensity `i`.
    pub fn attainable(&self, i: f64) -> f64 {
        self.peak_flops.min(self.peak_bandwidth * i)
    }

    /// True if a kernel at intensity `i` is memory-bound here.
    pub fn memory_bound(&self, i: f64) -> bool {
        i < self.ridge()
    }

    /// Attainable SGD update rate for a given per-update cost model —
    /// the roofline form of the throughput equation used everywhere else.
    pub fn updates_per_sec(&self, cost: &SgdUpdateCost) -> f64 {
        self.attainable(cost.flops_per_byte()) / cost.flops() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{P100_PASCAL, TITAN_X_MAXWELL, XEON_E5_2670X2};

    #[test]
    fn sgd_mf_is_memory_bound_on_every_platform() {
        // §2.3's conclusion, verified against all three machines.
        let cost = SgdUpdateCost::cpu_f32(128);
        let i = cost.flops_per_byte();
        for roofline in [
            Roofline::for_gpu(&TITAN_X_MAXWELL),
            Roofline::for_gpu(&P100_PASCAL),
            Roofline::for_cpu(&XEON_E5_2670X2),
        ] {
            assert!(roofline.memory_bound(i), "ridge {}", roofline.ridge());
            assert!(roofline.ridge() > 5.0, "machine balance sanity");
        }
    }

    #[test]
    fn cpu_ridge_matches_the_papers_example() {
        // §2.3: "a modern CPU processor provides ~600 GFLOPS ... and
        // ~60 GB/s ... (600/60 = 10)".
        let r = Roofline::for_cpu(&XEON_E5_2670X2);
        assert!((r.ridge() - 8.8).abs() < 2.0, "cpu ridge {}", r.ridge());
    }

    #[test]
    fn roofline_rate_equals_bandwidth_rate_when_memory_bound() {
        // For memory-bound kernels the roofline collapses to
        // bandwidth / bytes — the identity the rest of the model uses.
        let cost = SgdUpdateCost::cumf(128);
        let r = Roofline::for_gpu(&TITAN_X_MAXWELL);
        let via_roofline = r.updates_per_sec(&cost);
        let via_bandwidth = cost.updates_per_sec(r.peak_bandwidth);
        assert!((via_roofline - via_bandwidth).abs() / via_bandwidth < 1e-12);
    }

    #[test]
    fn halved_traffic_path_agrees_for_odd_k() {
        // Regression (k = 31): the roofline's half-precision speedup must
        // come out of the same feature-byte accounting as the cost model —
        // rate ratio == bytes ratio exactly, with no rounding loss on odd k.
        let f32c = SgdUpdateCost::cpu_f32(31);
        let f16c = SgdUpdateCost {
            k: 31,
            precision: crate::Precision::F16,
            rating_access: crate::RatingAccess::Streamed,
        };
        let r = Roofline::for_gpu(&TITAN_X_MAXWELL);
        let ratio = r.updates_per_sec(&f16c) / r.updates_per_sec(&f32c);
        let bytes_ratio = f32c.bytes() as f64 / f16c.bytes() as f64;
        assert!(
            (ratio - bytes_ratio).abs() < 1e-12,
            "{ratio} vs {bytes_ratio}"
        );
    }

    #[test]
    fn compute_bound_kernels_cap_at_peak_flops() {
        let r = Roofline::for_gpu(&TITAN_X_MAXWELL);
        let dense_gemm_intensity = 60.0; // far right of the ridge
        assert_eq!(r.attainable(dense_gemm_intensity), r.peak_flops);
        assert!(!r.memory_bound(dense_gemm_intensity));
    }

    #[test]
    fn attainable_is_monotone_in_intensity() {
        let r = Roofline::for_gpu(&P100_PASCAL);
        let mut prev = 0.0;
        for i in [0.1, 0.43, 1.0, 5.0, 16.0, 64.0] {
            let p = r.attainable(i);
            assert!(p >= prev);
            prev = p;
        }
    }
}
