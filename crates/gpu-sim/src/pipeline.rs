//! Transfer/compute overlap pipeline (§6.2–6.3 of the paper).
//!
//! When the data set does not fit in device memory, cuMF_SGD stages matrix
//! blocks through the GPU: H2D copy of the block (+ its `p`/`q` segments),
//! compute, D2H copy of the updated segments. Each worker thread drives
//! three CUDA streams so that the copy of block *b+1* overlaps the compute
//! of block *b*.
//!
//! With deterministic per-block costs and in-order streams this is exactly a
//! three-machine flow shop with fixed job order; its makespan follows the
//! classic recurrence
//!
//! ```text
//! h2d[i]  = max(h2d[i-1],  0        ) + t_h2d[i]
//! comp[i] = max(comp[i-1], h2d[i]   ) + t_comp[i]
//! d2h[i]  = max(d2h[i-1],  comp[i]  ) + t_d2h[i]
//! ```
//!
//! which we implement directly (and cross-check against the DES in tests).
//! The non-overlapped alternative (serial copy→compute→copy per block) is
//! kept for the ablation bench.

use crate::arch::{GpuSpec, LinkSpec};

/// Per-block transfer and compute volumes for the staging pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockJob {
    /// Host-to-device bytes: the rating block plus its `p`/`q` segments.
    pub h2d_bytes: f64,
    /// Device memory traffic of the block's SGD updates
    /// (`updates × SgdUpdateCost::bytes`).
    pub compute_bytes: f64,
    /// Device-to-host bytes: the updated `p`/`q` segments (ratings are
    /// read-only and never copied back, §6.1).
    pub d2h_bytes: f64,
}

/// Timing breakdown of one staged-execution run.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineResult {
    /// Total wall-clock (simulated) seconds.
    pub makespan: f64,
    /// Sum of pure compute time.
    pub compute_time: f64,
    /// Sum of pure transfer time (H2D + D2H).
    pub transfer_time: f64,
    /// Fraction of the makespan during which compute ran (compute
    /// utilisation; 1.0 = perfectly hidden transfers).
    pub compute_utilisation: f64,
}

/// Computes block completion under the overlapped 3-stream pipeline.
pub fn overlapped(
    jobs: &[BlockJob],
    gpu: &GpuSpec,
    link: &LinkSpec,
    workers: u32,
) -> PipelineResult {
    let bw = gpu.effective_bw(workers);
    let mut h2d_done = 0.0f64;
    let mut comp_done = 0.0f64;
    let mut d2h_done = 0.0f64;
    let mut compute_time = 0.0;
    let mut transfer_time = 0.0;
    for job in jobs {
        let t_h2d = link.transfer_time(job.h2d_bytes);
        let t_comp = gpu.launch_overhead_s + job.compute_bytes / bw;
        let t_d2h = link.transfer_time(job.d2h_bytes);
        h2d_done += t_h2d;
        comp_done = comp_done.max(h2d_done) + t_comp;
        d2h_done = d2h_done.max(comp_done) + t_d2h;
        compute_time += t_comp;
        transfer_time += t_h2d + t_d2h;
    }
    let makespan = d2h_done;
    PipelineResult {
        makespan,
        compute_time,
        transfer_time,
        compute_utilisation: if makespan > 0.0 {
            compute_time / makespan
        } else {
            0.0
        },
    }
}

/// Computes block completion with no overlap: copy → compute → copy,
/// strictly serialised per block (the unoptimised strawman of §6.2).
pub fn serial(jobs: &[BlockJob], gpu: &GpuSpec, link: &LinkSpec, workers: u32) -> PipelineResult {
    let bw = gpu.effective_bw(workers);
    let mut makespan = 0.0;
    let mut compute_time = 0.0;
    let mut transfer_time = 0.0;
    for job in jobs {
        let t_h2d = link.transfer_time(job.h2d_bytes);
        let t_comp = gpu.launch_overhead_s + job.compute_bytes / bw;
        let t_d2h = link.transfer_time(job.d2h_bytes);
        makespan += t_h2d + t_comp + t_d2h;
        compute_time += t_comp;
        transfer_time += t_h2d + t_d2h;
    }
    PipelineResult {
        makespan,
        compute_time,
        transfer_time,
        compute_utilisation: if makespan > 0.0 {
            compute_time / makespan
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{PCIE3_X16, TITAN_X_MAXWELL};

    fn job(h2d: f64, comp: f64, d2h: f64) -> BlockJob {
        BlockJob {
            h2d_bytes: h2d,
            compute_bytes: comp,
            d2h_bytes: d2h,
        }
    }

    #[test]
    fn overlap_beats_serial() {
        let jobs: Vec<_> = (0..16).map(|_| job(1e9, 100e9, 0.2e9)).collect();
        let ov = overlapped(&jobs, &TITAN_X_MAXWELL, &PCIE3_X16, 768);
        let se = serial(&jobs, &TITAN_X_MAXWELL, &PCIE3_X16, 768);
        assert!(ov.makespan < se.makespan);
        assert!(ov.compute_utilisation > se.compute_utilisation);
        // Totals are identical; only the schedule differs.
        assert!((ov.compute_time - se.compute_time).abs() < 1e-12);
        assert!((ov.transfer_time - se.transfer_time).abs() < 1e-12);
    }

    #[test]
    fn compute_bound_pipeline_hides_transfers() {
        // Compute per block >> transfer per block: makespan ~ prologue +
        // total compute.
        let jobs: Vec<_> = (0..32).map(|_| job(0.1e9, 200e9, 0.05e9)).collect();
        let ov = overlapped(&jobs, &TITAN_X_MAXWELL, &PCIE3_X16, 768);
        let bw = TITAN_X_MAXWELL.effective_bw(768);
        let t_comp_total = 32.0 * (200e9 / bw + TITAN_X_MAXWELL.launch_overhead_s);
        let prologue = PCIE3_X16.transfer_time(0.1e9);
        let epilogue = PCIE3_X16.transfer_time(0.05e9);
        let ideal = t_comp_total + prologue + epilogue;
        assert!(
            (ov.makespan - ideal).abs() / ideal < 1e-9,
            "{} vs {}",
            ov.makespan,
            ideal
        );
        assert!(ov.compute_utilisation > 0.95);
    }

    #[test]
    fn transfer_bound_pipeline_is_limited_by_link() {
        // Transfers dominate: makespan ~ total H2D time (link serialises).
        let jobs: Vec<_> = (0..32).map(|_| job(5e9, 1e9, 0.1e9)).collect();
        let ov = overlapped(&jobs, &TITAN_X_MAXWELL, &PCIE3_X16, 768);
        let t_h2d_total: f64 = 32.0 * PCIE3_X16.transfer_time(5e9);
        assert!(ov.makespan >= t_h2d_total);
        assert!(ov.makespan < t_h2d_total * 1.05);
        assert!(ov.compute_utilisation < 0.2);
    }

    #[test]
    fn nvlink_shrinks_transfer_bound_makespan() {
        use crate::arch::{NVLINK, P100_PASCAL};
        let jobs: Vec<_> = (0..16).map(|_| job(2e9, 10e9, 0.5e9)).collect();
        let pcie = overlapped(&jobs, &TITAN_X_MAXWELL, &PCIE3_X16, 768);
        let nvl = overlapped(&jobs, &P100_PASCAL, &NVLINK, 1792);
        // The Hugewiki story (§7.3): the faster link + GPU shifts the
        // speedup dramatically.
        assert!(pcie.makespan / nvl.makespan > 3.0);
    }

    #[test]
    fn empty_job_list() {
        let ov = overlapped(&[], &TITAN_X_MAXWELL, &PCIE3_X16, 768);
        assert_eq!(ov.makespan, 0.0);
        assert_eq!(ov.compute_utilisation, 0.0);
    }

    #[test]
    fn single_job_has_no_overlap_opportunity() {
        let jobs = [job(1e9, 50e9, 0.5e9)];
        let ov = overlapped(&jobs, &TITAN_X_MAXWELL, &PCIE3_X16, 768);
        let se = serial(&jobs, &TITAN_X_MAXWELL, &PCIE3_X16, 768);
        assert!((ov.makespan - se.makespan).abs() < 1e-12);
    }
}
