//! Hardware specifications for the simulated platforms.
//!
//! Table 1 of the cuMF_SGD paper defines two evaluation platforms; the specs
//! below transcribe them, augmented with the *achieved* figures the paper
//! itself reports (Fig 11, §7.3), which calibrate our bandwidth model:
//!
//! * **Maxwell platform** — 2× 12-core Xeon E5-2670 (48 threads) + 4× TITAN X
//!   (24 SMs, 12 GB, 360 GB/s), PCIe 3.0 ×16 (16 GB/s theoretical, 5.5 GB/s
//!   achieved for MF traffic).
//! * **Pascal platform** — 2× 10-core POWER8 + 4× P100 (56 SMs, 16 GB,
//!   780 GB/s), NVLink (80 GB/s theoretical, 29.1 GB/s achieved).

/// A GPU architecture/spec, sufficient for the memory-bound roofline model.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"TITAN X (Maxwell)"`.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sms: u32,
    /// Maximum resident thread blocks per SM (32 on both paper GPUs).
    pub max_blocks_per_sm: u32,
    /// SIMD width of a warp; cuMF_SGD fixes its thread-block size to this.
    pub warp_size: u32,
    /// Device memory capacity in bytes.
    pub mem_bytes: u64,
    /// Theoretical peak off-chip bandwidth in bytes/second.
    pub peak_bw: f64,
    /// Fraction of peak bandwidth achievable by a fully occupant
    /// memory-bound kernel. Calibrated from the paper: Maxwell reaches
    /// 266 GB/s of 360 (0.739); Pascal 567 of 780 (0.727).
    pub bw_efficiency: f64,
    /// L1 cache line size in bytes (128 B on both).
    pub l1_line_bytes: u32,
    /// Kernel launch overhead in seconds.
    pub launch_overhead_s: f64,
}

impl GpuSpec {
    /// Hardware limit on concurrently resident parallel workers
    /// (thread blocks): `sms * max_blocks_per_sm`. 768 on Maxwell,
    /// 1792 on Pascal — the x-axis limits of Figs 5(b), 7(a), 11.
    pub fn max_workers(&self) -> u32 {
        self.sms * self.max_blocks_per_sm
    }

    /// Effective DRAM bandwidth (bytes/s) with `workers` resident parallel
    /// workers.
    ///
    /// The paper observes near-linear scaling of `#Updates/s` with worker
    /// count up to the hardware limit (Fig 7a, Fig 11a): a memory-bound
    /// kernel needs many in-flight warps to saturate DRAM. We model the
    /// occupancy curve as
    /// `bw(x) = peak * eff * x / (x + beta * (1 - x))`, `x = s / s_max`,
    /// with `beta = 0.92`: essentially linear with a slight concave bend at
    /// high occupancy (MLP begins to saturate), matching the gentle
    /// flattening visible in Fig 11.
    pub fn effective_bw(&self, workers: u32) -> f64 {
        if workers == 0 {
            return 0.0;
        }
        let x = (workers.min(self.max_workers()) as f64) / self.max_workers() as f64;
        const BETA: f64 = 0.92;
        let bw = self.peak_bw * self.bw_efficiency * x / (x + BETA * (1.0 - x));
        cumf_obs::gauge(
            "cumf_gpusim_occupancy",
            "Fraction of the GPU's maximum resident thread blocks in use",
        )
        .set(x);
        cumf_obs::gauge(
            "cumf_gpusim_effective_bw_bytes_per_sec",
            "Occupancy-dependent effective DRAM bandwidth of the modelled GPU",
        )
        .set(bw);
        bw
    }

    /// A degraded copy of this spec with only `factor` of its streaming
    /// multiprocessors still healthy (SM throttling under a thermal or
    /// fault event): the SM count and — because the occupancy model feeds
    /// off resident blocks — the achievable bandwidth both shrink. At
    /// least one SM always survives; `factor` is clamped to `(0, 1]`.
    pub fn throttled(&self, factor: f64) -> GpuSpec {
        let factor = factor.clamp(f64::MIN_POSITIVE, 1.0);
        GpuSpec {
            sms: ((self.sms as f64 * factor).floor() as u32).max(1),
            peak_bw: self.peak_bw * factor,
            ..self.clone()
        }
    }
}

/// NVIDIA TITAN X, Maxwell generation — the paper's Maxwell platform GPU.
pub const TITAN_X_MAXWELL: GpuSpec = GpuSpec {
    name: "TITAN X (Maxwell)",
    sms: 24,
    max_blocks_per_sm: 32,
    warp_size: 32,
    mem_bytes: 12 * (1 << 30),
    peak_bw: 360.0e9,
    bw_efficiency: 0.739,
    l1_line_bytes: 128,
    launch_overhead_s: 8e-6,
};

/// NVIDIA Tesla P100, Pascal generation — the paper's Pascal platform GPU.
pub const P100_PASCAL: GpuSpec = GpuSpec {
    name: "P100 (Pascal)",
    sms: 56,
    max_blocks_per_sm: 32,
    warp_size: 32,
    mem_bytes: 16 * (1 << 30),
    peak_bw: 780.0e9,
    bw_efficiency: 0.727,
    l1_line_bytes: 128,
    launch_overhead_s: 6e-6,
};

/// A CPU socket/platform spec for the CPU-side baselines.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Hardware threads available.
    pub threads: u32,
    /// Aggregate DRAM bandwidth in bytes/s.
    pub dram_bw: f64,
    /// Last-level cache capacity in bytes (aggregate over sockets).
    pub llc_bytes: u64,
    /// Peak single-precision GFLOPS (for roofline context only).
    pub peak_gflops: f64,
}

/// 2× Intel Xeon E5-2670 v3 — the paper's Maxwell-platform host CPU.
/// The paper's §2.3 quotes ~600 GFLOPS and ~60 GB/s for "a modern CPU";
/// we use 68 GB/s aggregate and 60 MB of combined LLC for the dual socket.
pub const XEON_E5_2670X2: CpuSpec = CpuSpec {
    name: "2x Xeon E5-2670",
    threads: 48,
    dram_bw: 68.0e9,
    llc_bytes: 60 * (1 << 20),
    peak_gflops: 600.0,
};

/// One node of the NOMAD HPC cluster (§7.2: 4 CPU cores per node). Four
/// cores sustain ~12.5 GB/s of the socket's bandwidth — together with the
/// per-message cost this anchors the model to NOMAD's measured 5.6X
/// 32-node Netflix speedup *and* its near-cuMF_SGD-M Hugewiki time.
pub const NOMAD_HPC_NODE: CpuSpec = CpuSpec {
    name: "NOMAD HPC node (4 cores)",
    threads: 4,
    dram_bw: 12.5e9,
    llc_bytes: 10 * (1 << 20),
    peak_gflops: 80.0,
};

/// A CPU↔GPU (or node↔node) interconnect specification.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Theoretical bandwidth, bytes/s.
    pub theoretical_bw: f64,
    /// Achieved bandwidth for bulk MF traffic, bytes/s. The paper reports
    /// 5.5 GB/s average on PCIe 3.0 ×16 and 29.1 GB/s on NVLink (§7.3).
    pub achieved_bw: f64,
    /// Per-transfer latency in seconds.
    pub latency_s: f64,
}

impl LinkSpec {
    /// Time to move `bytes` over the link, using achieved bandwidth.
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        self.latency_s + bytes / self.achieved_bw
    }

    /// A degraded copy of this link: achieved bandwidth scaled by
    /// `bw_factor` (clamped to `(0, 1]`) and `extra_latency_s` added per
    /// transfer. Models a flapping or contended interconnect during fault
    /// injection; the retransfer cost of a corrupted hand-off is priced on
    /// the degraded link.
    pub fn degraded(&self, bw_factor: f64, extra_latency_s: f64) -> LinkSpec {
        LinkSpec {
            achieved_bw: self.achieved_bw * bw_factor.clamp(f64::MIN_POSITIVE, 1.0),
            latency_s: self.latency_s + extra_latency_s.max(0.0),
            ..self.clone()
        }
    }
}

/// PCIe 3.0 ×16 — Maxwell platform interconnect.
pub const PCIE3_X16: LinkSpec = LinkSpec {
    name: "PCIe 3.0 x16",
    theoretical_bw: 16.0e9,
    achieved_bw: 5.5e9,
    latency_s: 10e-6,
};

/// NVLink 1.0 — Pascal platform interconnect.
pub const NVLINK: LinkSpec = LinkSpec {
    name: "NVLink",
    theoretical_bw: 80.0e9,
    achieved_bw: 29.1e9,
    latency_s: 8e-6,
};

/// Infiniband-class HPC network link used by the NOMAD cluster model
/// (§2.3/Fig 2b: distributed memory efficiency is crushed by the network).
pub const HPC_NETWORK: LinkSpec = LinkSpec {
    name: "HPC cluster network",
    theoretical_bw: 3.5e9,
    achieved_bw: 2.0e9,
    latency_s: 2e-6,
};

/// A full evaluation platform: host CPU + one or more GPUs + interconnect.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Platform name as used in the paper ("Maxwell" / "Pascal").
    pub name: &'static str,
    /// Host CPU.
    pub cpu: CpuSpec,
    /// GPU model (the paper's platforms carry 4 identical GPUs).
    pub gpu: GpuSpec,
    /// Number of GPUs installed.
    pub gpus: u32,
    /// CPU↔GPU link.
    pub link: LinkSpec,
}

/// The paper's Maxwell platform (Table 1, top half).
pub fn maxwell_platform() -> Platform {
    Platform {
        name: "Maxwell",
        cpu: XEON_E5_2670X2,
        gpu: TITAN_X_MAXWELL,
        gpus: 4,
        link: PCIE3_X16,
    }
}

/// The paper's Pascal platform (Table 1, bottom half).
pub fn pascal_platform() -> Platform {
    Platform {
        name: "Pascal",
        cpu: XEON_E5_2670X2, // POWER8 host; memory-side behaviour equivalent for our model
        gpu: P100_PASCAL,
        gpus: 4,
        link: NVLINK,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_limits_match_paper() {
        assert_eq!(TITAN_X_MAXWELL.max_workers(), 768);
        assert_eq!(P100_PASCAL.max_workers(), 1792);
    }

    #[test]
    fn calibrated_bandwidth_matches_fig11() {
        // Paper Fig 11(b): cuMF_SGD achieves up to 266 GB/s on Maxwell and
        // 567 GB/s on Pascal at full occupancy.
        let m = TITAN_X_MAXWELL.effective_bw(768);
        assert!((m - 266.0e9).abs() / 266.0e9 < 0.01, "maxwell bw {m}");
        let p = P100_PASCAL.effective_bw(1792);
        assert!((p - 567.0e9).abs() / 567.0e9 < 0.01, "pascal bw {p}");
    }

    #[test]
    fn bandwidth_scales_near_linearly() {
        let half = TITAN_X_MAXWELL.effective_bw(384);
        let full = TITAN_X_MAXWELL.effective_bw(768);
        let ratio = half / full;
        // Slightly above 0.5 (concave curve), but close to linear.
        assert!(ratio > 0.5 && ratio < 0.60, "ratio {ratio}");
        assert_eq!(TITAN_X_MAXWELL.effective_bw(0), 0.0);
        // Requesting more workers than the hardware limit clamps.
        assert_eq!(full, TITAN_X_MAXWELL.effective_bw(10_000));
    }

    #[test]
    fn bandwidth_is_monotone_in_workers() {
        let mut prev = 0.0;
        for s in (1..=768).step_by(7) {
            let bw = TITAN_X_MAXWELL.effective_bw(s);
            assert!(bw > prev, "bw must increase with workers (s={s})");
            prev = bw;
        }
    }

    #[test]
    fn link_transfer_time() {
        // 5.5 GB over PCIe at 5.5 GB/s achieved = 1 s + 10 us latency.
        let t = PCIE3_X16.transfer_time(5.5e9);
        assert!((t - 1.000_01).abs() < 1e-9);
        assert!(NVLINK.transfer_time(29.1e9) < 1.001);
    }

    #[test]
    fn platforms_are_populated() {
        let m = maxwell_platform();
        assert_eq!(m.gpus, 4);
        assert_eq!(m.gpu.name, "TITAN X (Maxwell)");
        assert_eq!(m.link.name, "PCIe 3.0 x16");
        let p = pascal_platform();
        assert!(p.gpu.peak_bw > m.gpu.peak_bw);
        assert!(p.link.achieved_bw > m.link.achieved_bw);
    }
}
