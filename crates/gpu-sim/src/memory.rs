//! Memory-system models: CPU cache amplification and GPU L1 behaviour.
//!
//! The paper's motivating observation (Fig 2a, Fig 10b) is that LIBMF's
//! *effective* bandwidth — bytes consumed by the compute per second — is far
//! above the CPU's DRAM bandwidth on small data sets (194 GB/s on Netflix
//! vs ~68 GB/s of DRAM) because feature-vector accesses hit in cache, and
//! that this amplification collapses as the working set grows (106 GB/s on
//! Hugewiki). GPUs, in contrast, do not depend on caches: cuMF_SGD achieves
//! the *same* bandwidth on every data set.

use crate::arch::CpuSpec;
use crate::kernel::SgdUpdateCost;

/// Line-granular accounting: how many cache lines of size `line_bytes` a
/// contiguous access of `len_bytes` starting at byte offset `offset`
/// touches. This is the memory model's ground truth for coalescing — the
/// static coalescing pass in `cumf-analyze` must reproduce these counts
/// for every access in the kernel IR, at every alignment.
pub fn lines_touched(offset: u64, len_bytes: u64, line_bytes: u32) -> u64 {
    assert!(line_bytes > 0, "line size must be positive");
    if len_bytes == 0 {
        return 0;
    }
    let line = line_bytes as u64;
    let first = offset / line;
    let last = (offset + len_bytes - 1) / line;
    last - first + 1
}

/// Cache model for a blocked CPU SGD solver (LIBMF-style).
///
/// Traffic per update splits into a streamed rating read (never reused; the
/// compulsory-miss stream) and `4k` feature-element accesses that hit in
/// the LLC with probability `p_hit` determined by how much of the active
/// block's feature working set fits in cache.
///
/// With hit fraction `h` of total requested bytes and a cache that is fast
/// relative to DRAM, the DRAM-bound runtime serves `(1-h)` of the bytes, so
///
/// ```text
/// effective_bw = dram_bw / (1 - h)
/// ```
///
/// `p_hit` follows a smooth capacity curve `h0 / (1 + (ws / w0)^alpha)`
/// calibrated against the paper's two measured points:
/// Netflix (block working set ≈ 2.5 MB, a=100) → 194 GB/s, and
/// Hugewiki (≈ 256 MB) → 106 GB/s, on a 68 GB/s, 60 MB-LLC dual Xeon.
#[derive(Debug, Clone)]
pub struct CpuCacheModel {
    /// Host CPU spec (DRAM bandwidth, LLC size).
    pub cpu: CpuSpec,
    /// Peak feature hit rate when the block fits comfortably in cache.
    pub h0: f64,
    /// Working-set scale (bytes) at which the hit rate has halved.
    pub w0: f64,
    /// Capacity-curve exponent.
    pub alpha: f64,
}

impl CpuCacheModel {
    /// Model calibrated to the paper's Maxwell-platform Xeon host.
    pub fn calibrated(cpu: CpuSpec) -> Self {
        CpuCacheModel {
            cpu,
            h0: 0.76,
            w0: 150.0 * (1 << 20) as f64,
            alpha: 0.45,
        }
    }

    /// Feature working set of one a×a block: `(m/a + n/a) * k * elem_bytes`.
    pub fn block_working_set(m: u64, n: u64, a: u64, k: u32, elem_bytes: u32) -> f64 {
        ((m as f64 / a as f64) + (n as f64 / a as f64)) * k as f64 * elem_bytes as f64
    }

    /// Probability that a feature-element access hits in cache, given the
    /// block feature working set in bytes.
    pub fn feature_hit_rate(&self, working_set: f64) -> f64 {
        self.h0 / (1.0 + (working_set / self.w0).powf(self.alpha))
    }

    /// Overall hit fraction of requested bytes for a given update cost:
    /// ratings always miss; features hit at [`Self::feature_hit_rate`].
    pub fn hit_fraction(&self, cost: &SgdUpdateCost, working_set: f64) -> f64 {
        let feature_bytes = cost.feature_bytes() as f64;
        let total = cost.bytes() as f64;
        self.feature_hit_rate(working_set) * feature_bytes / total
    }

    /// Effective (compute-observed) bandwidth in bytes/s.
    pub fn effective_bw(&self, cost: &SgdUpdateCost, working_set: f64) -> f64 {
        let h = self.hit_fraction(cost, working_set);
        let bw = self.cpu.dram_bw / (1.0 - h);
        if cumf_obs::enabled() {
            cumf_obs::gauge(
                "cumf_gpusim_cache_hit_rate",
                "Modelled fraction of requested bytes served by cache",
            )
            .set(h);
            cumf_obs::gauge(
                "cumf_gpusim_cache_effective_bw_bytes_per_sec",
                "Cache-amplified effective bandwidth of the modelled CPU, bytes/s",
            )
            .set(bw);
            // Per-modelled-update byte split: cache hits vs DRAM misses.
            let total = cost.bytes() as f64;
            cumf_obs::counter(
                "cumf_gpusim_cache_hit_bytes_total",
                "Bytes per modelled update served from cache (accumulated per model query)",
            )
            .add((h * total).round() as u64);
            cumf_obs::counter(
                "cumf_gpusim_cache_miss_bytes_total",
                "Bytes per modelled update served from DRAM (accumulated per model query)",
            )
            .add(((1.0 - h) * total).round() as u64);
        }
        bw
    }

    /// Effective bandwidth for an m×n data set blocked a×a at dimension k
    /// (single precision, streamed — the LIBMF configuration).
    pub fn libmf_effective_bw(&self, m: u64, n: u64, a: u64, k: u32) -> f64 {
        let ws = Self::block_working_set(m, n, a, k, 4);
        self.effective_bw(&SgdUpdateCost::cpu_f32(k), ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::XEON_E5_2670X2;

    fn model() -> CpuCacheModel {
        CpuCacheModel::calibrated(XEON_E5_2670X2)
    }

    #[test]
    fn netflix_effective_bw_matches_fig2a() {
        // Netflix: m=480,190, n=17,771, a=100, k=128 -> ~194 GB/s.
        let bw = model().libmf_effective_bw(480_190, 17_771, 100, 128);
        assert!(
            (bw - 194e9).abs() / 194e9 < 0.08,
            "netflix bw {:.1} GB/s",
            bw / 1e9
        );
    }

    #[test]
    fn hugewiki_effective_bw_matches_fig2a() {
        // Hugewiki: m=50,082,604, n=39,781 -> ~106 GB/s (45% drop).
        let bw = model().libmf_effective_bw(50_082_604, 39_781, 100, 128);
        assert!(
            (bw - 106e9).abs() / 106e9 < 0.10,
            "hugewiki bw {:.1} GB/s",
            bw / 1e9
        );
    }

    #[test]
    fn yahoo_lands_between() {
        let netflix = model().libmf_effective_bw(480_190, 17_771, 100, 128);
        let yahoo = model().libmf_effective_bw(1_000_990, 624_961, 100, 128);
        let hugewiki = model().libmf_effective_bw(50_082_604, 39_781, 100, 128);
        assert!(hugewiki < yahoo && yahoo < netflix);
    }

    #[test]
    fn effective_bw_never_below_dram() {
        let m = model();
        let bw = m.effective_bw(&SgdUpdateCost::cpu_f32(128), 1e12);
        assert!(bw >= m.cpu.dram_bw);
    }

    #[test]
    fn hit_rate_monotone_in_working_set() {
        let m = model();
        let mut prev = f64::INFINITY;
        for ws_mb in [1.0, 4.0, 16.0, 64.0, 256.0, 1024.0] {
            let h = m.feature_hit_rate(ws_mb * 1048576.0);
            assert!(h < prev, "hit rate must fall as working set grows");
            assert!((0.0..=1.0).contains(&h));
            prev = h;
        }
    }

    #[test]
    fn lines_touched_counts_straddles() {
        // Aligned accesses: exact ceiling division.
        assert_eq!(lines_touched(0, 128, 128), 1);
        assert_eq!(lines_touched(0, 129, 128), 2);
        assert_eq!(lines_touched(0, 256, 128), 2);
        assert_eq!(lines_touched(0, 0, 128), 0);
        // Misaligned accesses straddle one extra line.
        assert_eq!(lines_touched(4, 128, 128), 2);
        assert_eq!(lines_touched(124, 8, 128), 2);
        assert_eq!(lines_touched(124, 4, 128), 1);
        // A 12-byte COO sample at a random offset touches 1 or 2 lines —
        // the RandomLine rating-access model charges the full line(s).
        for offset in 0..256u64 {
            let lines = lines_touched(offset, 12, 128);
            assert!((1..=2).contains(&lines));
        }
    }

    #[test]
    fn working_set_formula() {
        let ws = CpuCacheModel::block_working_set(480_190, 17_771, 100, 128, 4);
        // (4802 + 178) rows/cols of 512 B each ~ 2.55 MB
        assert!((ws - 2.55e6).abs() / 2.55e6 < 0.01, "ws {ws}");
    }
}
