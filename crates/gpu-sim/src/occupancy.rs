//! SM occupancy calculation — how many parallel workers (thread blocks)
//! a GPU can keep resident, from first principles.
//!
//! §4 of the paper: the kernel uses 32-thread blocks and 33 registers per
//! thread, so "the concurrency is only limited by the number of thread
//! blocks of GPUs" — i.e. the architectural blocks-per-SM cap (32), not
//! registers, threads, or shared memory. This module re-derives the
//! 768-worker (Maxwell) and 1792-worker (Pascal) limits the rest of the
//! model takes as spec constants.

use crate::arch::GpuSpec;

/// Per-SM architectural resources relevant to occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmResources {
    /// 32-bit registers per SM (64 Ki on Maxwell and Pascal).
    pub registers: u32,
    /// Maximum resident threads per SM (2048 on both).
    pub max_threads: u32,
    /// Maximum resident blocks per SM (32 on both).
    pub max_blocks: u32,
    /// Shared memory per SM, bytes (96 KiB Maxwell, 64 KiB P100).
    pub shared_mem: u32,
    /// Register allocation granularity per warp (256 on both).
    pub reg_alloc_unit: u32,
}

/// Maxwell SM (SMM) resources.
pub const SM_MAXWELL: SmResources = SmResources {
    registers: 64 * 1024,
    max_threads: 2048,
    max_blocks: 32,
    shared_mem: 96 * 1024,
    reg_alloc_unit: 256,
};

/// Pascal SM (P100) resources.
pub const SM_PASCAL: SmResources = SmResources {
    registers: 64 * 1024,
    max_threads: 2048,
    max_blocks: 32,
    shared_mem: 64 * 1024,
    reg_alloc_unit: 256,
};

/// A kernel's per-block resource footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelFootprint {
    /// Threads per block (cuMF_SGD fixes this to the warp size, 32).
    pub threads_per_block: u32,
    /// Registers per thread (33 for the cuMF_SGD kernel, §4).
    pub regs_per_thread: u32,
    /// Shared memory per block, bytes (0 — the kernel deliberately avoids
    /// shared memory in favour of warp shuffles, §4).
    pub shared_per_block: u32,
}

impl KernelFootprint {
    /// The cuMF_SGD kernel footprint reported by the CUDA compiler (§4).
    pub const CUMF_SGD: KernelFootprint = KernelFootprint {
        threads_per_block: 32,
        regs_per_thread: 33,
        shared_per_block: 0,
    };

    /// Registers a block actually consumes, honouring warp-granular
    /// allocation (registers are allocated in `reg_alloc_unit` chunks per
    /// warp).
    fn block_registers(&self, sm: &SmResources) -> u32 {
        let warps = self.threads_per_block.div_ceil(32);
        let per_warp = (32 * self.regs_per_thread).div_ceil(sm.reg_alloc_unit) * sm.reg_alloc_unit;
        warps * per_warp
    }
}

/// Resident blocks per SM for a kernel: the minimum over the four
/// occupancy limiters.
pub fn blocks_per_sm(kernel: &KernelFootprint, sm: &SmResources) -> u32 {
    let by_blocks = sm.max_blocks;
    let by_threads = sm.max_threads / kernel.threads_per_block.max(1);
    let by_regs = sm.registers / kernel.block_registers(sm).max(1);
    let by_shmem = sm
        .shared_mem
        .checked_div(kernel.shared_per_block)
        .unwrap_or(u32::MAX);
    by_blocks.min(by_threads).min(by_regs).min(by_shmem)
}

/// The limiting resource for a kernel on an SM (diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limiter {
    /// Architectural blocks-per-SM cap (the cuMF_SGD case, §4).
    BlockSlots,
    /// Thread count.
    Threads,
    /// Register file.
    Registers,
    /// Shared memory.
    SharedMemory,
}

/// Which resource caps residency for `kernel` on `sm`.
pub fn limiter(kernel: &KernelFootprint, sm: &SmResources) -> Limiter {
    let resident = blocks_per_sm(kernel, sm);
    if resident == sm.max_blocks {
        Limiter::BlockSlots
    } else if resident == sm.max_threads / kernel.threads_per_block.max(1) {
        Limiter::Threads
    } else if kernel.shared_per_block > 0 && resident == sm.shared_mem / kernel.shared_per_block {
        Limiter::SharedMemory
    } else {
        Limiter::Registers
    }
}

/// Total resident parallel workers on a whole GPU.
pub fn max_workers(kernel: &KernelFootprint, sm: &SmResources, gpu: &GpuSpec) -> u32 {
    gpu.sms * blocks_per_sm(kernel, sm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{P100_PASCAL, TITAN_X_MAXWELL};

    #[test]
    fn cumf_kernel_is_block_slot_limited() {
        // §4: "the concurrency is only limited by the number of thread
        // blocks" — registers are NOT the limiter at 33 regs/thread.
        let k = KernelFootprint::CUMF_SGD;
        assert_eq!(blocks_per_sm(&k, &SM_MAXWELL), 32);
        assert_eq!(limiter(&k, &SM_MAXWELL), Limiter::BlockSlots);
        assert_eq!(limiter(&k, &SM_PASCAL), Limiter::BlockSlots);
    }

    #[test]
    fn derives_the_papers_worker_limits() {
        let k = KernelFootprint::CUMF_SGD;
        assert_eq!(max_workers(&k, &SM_MAXWELL, &TITAN_X_MAXWELL), 768);
        assert_eq!(max_workers(&k, &SM_PASCAL, &P100_PASCAL), 1792);
        // Consistent with the spec constants the rest of the model uses.
        assert_eq!(
            max_workers(&k, &SM_MAXWELL, &TITAN_X_MAXWELL),
            TITAN_X_MAXWELL.max_workers()
        );
    }

    #[test]
    fn fat_kernels_become_register_limited() {
        // A hypothetical 256-thread block using 128 regs/thread: 32k regs
        // per block -> only 2 blocks fit in the 64k register file.
        let fat = KernelFootprint {
            threads_per_block: 256,
            regs_per_thread: 128,
            shared_per_block: 0,
        };
        assert_eq!(blocks_per_sm(&fat, &SM_MAXWELL), 2);
        assert_eq!(limiter(&fat, &SM_MAXWELL), Limiter::Registers);
    }

    #[test]
    fn thread_limited_kernels() {
        let wide = KernelFootprint {
            threads_per_block: 1024,
            regs_per_thread: 16,
            shared_per_block: 0,
        };
        assert_eq!(blocks_per_sm(&wide, &SM_MAXWELL), 2);
        assert_eq!(limiter(&wide, &SM_MAXWELL), Limiter::Threads);
    }

    #[test]
    fn shared_memory_limited_kernels() {
        let shmem_hog = KernelFootprint {
            threads_per_block: 32,
            regs_per_thread: 16,
            shared_per_block: 48 * 1024,
        };
        assert_eq!(blocks_per_sm(&shmem_hog, &SM_MAXWELL), 2);
        assert_eq!(limiter(&shmem_hog, &SM_MAXWELL), Limiter::SharedMemory);
        // Pascal has less shared memory: only 1 block.
        assert_eq!(blocks_per_sm(&shmem_hog, &SM_PASCAL), 1);
    }

    #[test]
    fn register_allocation_is_warp_granular() {
        // 33 regs/thread * 32 threads = 1056 -> rounds to 1280 (5 * 256).
        let k = KernelFootprint::CUMF_SGD;
        assert_eq!(k.block_registers(&SM_MAXWELL), 1280);
        // 64k / 1280 = 51 blocks by registers alone — far above the
        // 32-block cap, confirming §4's analysis.
        assert!(SM_MAXWELL.registers / k.block_registers(&SM_MAXWELL) > 32);
    }
}
